//! The cluster serving-layer load sweep: offered load x dispatch policy on
//! an N-node NPU cluster under open-loop Poisson arrivals, covering both
//! dispatch paths — the *open-loop* front-end (commit on FCFS-approximation
//! ledgers, then simulate) and the *closed-loop* online dispatcher (react to
//! observed node state, with work stealing and SLA admission).
//!
//! Offered load is calibrated against the workload mix: a load of `rho`
//! means the arrival rate is `rho * nodes / E[S]`, where `E[S]` is the mean
//! isolated service time over the model/batch pools — so `rho -> 1`
//! approaches the cluster's saturation point regardless of the mix. Every
//! load level generates *one* seeded request stream that all dispatch
//! policies — open and closed — replay, so policy comparisons are paired,
//! and every cell is a pure function of the sweep seed (the `throughput
//! cluster` baseline gate hashes the cells to detect any behavioural
//! divergence).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dnn_models::{ModelKind, SeqSpec};
use npu_sim::NpuConfig;
use prema_cluster::{
    online_outcome_hash, outcome_hash, ClusterConfig, ClusterMetrics, ClusterSimulator,
    DispatchPolicy, OnlineClusterConfig, OnlineClusterSimulator, OnlineDispatchPolicy,
};
use prema_core::plan::ExecutionPlan;
use prema_core::SchedulerConfig;
use prema_workload::arrivals::{generate_open_loop, OpenLoopConfig};
use prema_workload::prepare::prepare_workload;

use crate::suite::{build_predictor, run_seed};

/// The p99 turnaround target (milliseconds) the sweep's `sla-admit` variant
/// sheds against: between the committed baseline's p95 and p99 at high
/// load, so shedding engages exactly in the saturated regime the admission
/// policy exists for.
pub const SLA_ADMIT_TARGET_P99_MS: f64 = 300.0;

/// The closed-loop configurations the sweep compares, each a named
/// combination of an [`OnlineDispatchPolicy`] and the closed-loop-only
/// mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClosedLoopVariant {
    /// Join-shortest-queue over live queue depth.
    ShortestQueue,
    /// Least true remaining predicted work.
    LeastWork,
    /// Priority-aware blocking work (the reactive mirror of the open-loop
    /// predictive policy).
    Predictive,
    /// Predictive dispatch plus work stealing on node idle.
    WorkStealing,
    /// Predictive dispatch plus SLA-aware admission at
    /// [`SLA_ADMIT_TARGET_P99_MS`].
    SlaAdmission,
}

impl ClosedLoopVariant {
    /// Every closed-loop variant, in the order the sweep reports them.
    pub const ALL: [ClosedLoopVariant; 5] = [
        ClosedLoopVariant::ShortestQueue,
        ClosedLoopVariant::LeastWork,
        ClosedLoopVariant::Predictive,
        ClosedLoopVariant::WorkStealing,
        ClosedLoopVariant::SlaAdmission,
    ];

    /// A short stable label for reports and baselines. The plain dispatch
    /// variants delegate to [`OnlineDispatchPolicy::label`] so the strings
    /// cannot drift apart.
    pub fn label(self) -> &'static str {
        match self {
            ClosedLoopVariant::ShortestQueue => OnlineDispatchPolicy::ShortestQueue.label(),
            ClosedLoopVariant::LeastWork => OnlineDispatchPolicy::LeastWork.label(),
            ClosedLoopVariant::Predictive => OnlineDispatchPolicy::Predictive.label(),
            ClosedLoopVariant::WorkStealing => "work-steal",
            ClosedLoopVariant::SlaAdmission => "sla-admit",
        }
    }

    /// Builds the online cluster configuration for this variant.
    pub fn config(
        self,
        nodes: usize,
        scheduler: SchedulerConfig,
        npu: NpuConfig,
    ) -> OnlineClusterConfig {
        let dispatch = match self {
            ClosedLoopVariant::ShortestQueue => OnlineDispatchPolicy::ShortestQueue,
            ClosedLoopVariant::LeastWork => OnlineDispatchPolicy::LeastWork,
            ClosedLoopVariant::Predictive
            | ClosedLoopVariant::WorkStealing
            | ClosedLoopVariant::SlaAdmission => OnlineDispatchPolicy::Predictive,
        };
        let mut config = OnlineClusterConfig::new(nodes, scheduler, dispatch);
        config.npu = npu;
        match self {
            ClosedLoopVariant::WorkStealing => config.with_work_stealing(),
            ClosedLoopVariant::SlaAdmission => config.with_admission(SLA_ADMIT_TARGET_P99_MS),
            _ => config,
        }
    }
}

impl std::fmt::Display for ClosedLoopVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Options controlling a cluster load sweep.
#[derive(Debug, Clone)]
pub struct ClusterSweepOptions {
    /// Number of NPU nodes.
    pub nodes: usize,
    /// RNG seed: per-load request streams and the random dispatcher derive
    /// from it.
    pub seed: u64,
    /// Length of each generated arrival window, in milliseconds.
    pub duration_ms: f64,
    /// Offered load levels (fraction of the cluster's service capacity).
    pub loads: Vec<f64>,
    /// Open-loop dispatch policies under comparison.
    pub policies: Vec<DispatchPolicy>,
    /// Closed-loop variants under comparison (replaying the same streams).
    pub closed: Vec<ClosedLoopVariant>,
    /// The per-node scheduler.
    pub scheduler: SchedulerConfig,
    /// The per-node NPU configuration.
    pub npu: NpuConfig,
    /// Whether to fan per-node open-loop simulations out over all cores
    /// (results are bit-identical either way; the closed-loop event loop is
    /// inherently serial).
    pub parallel: bool,
}

impl ClusterSweepOptions {
    /// The committed-baseline sweep: 4 Dynamic-PREMA nodes, 400 ms Poisson
    /// windows at 50 / 75 / 95 % offered load, all five open-loop dispatch
    /// policies plus all five closed-loop variants.
    pub fn baseline() -> Self {
        ClusterSweepOptions {
            nodes: 4,
            seed: 2020,
            duration_ms: 400.0,
            loads: vec![0.50, 0.75, 0.95],
            policies: DispatchPolicy::ALL.to_vec(),
            closed: ClosedLoopVariant::ALL.to_vec(),
            scheduler: SchedulerConfig::paper_default(),
            npu: NpuConfig::paper_default(),
            parallel: true,
        }
    }

    /// A reduced sweep for unit tests and quick local runs.
    pub fn quick() -> Self {
        ClusterSweepOptions {
            duration_ms: 200.0,
            loads: vec![0.6, 0.95],
            policies: vec![
                DispatchPolicy::Random,
                DispatchPolicy::ShortestQueue,
                DispatchPolicy::Predictive,
            ],
            closed: vec![
                ClosedLoopVariant::Predictive,
                ClosedLoopVariant::WorkStealing,
            ],
            ..ClusterSweepOptions::baseline()
        }
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("at least one node is required".into());
        }
        if self.loads.is_empty() {
            return Err("at least one load level is required".into());
        }
        if self.loads.iter().any(|rho| !rho.is_finite() || *rho <= 0.0) {
            return Err("load levels must be positive and finite".into());
        }
        if self.policies.is_empty() && self.closed.is_empty() {
            return Err("at least one dispatch policy is required".into());
        }
        if !self.duration_ms.is_finite() || self.duration_ms <= 0.0 {
            return Err("duration must be positive and finite".into());
        }
        Ok(())
    }

    /// Policies per load level (open + closed).
    pub fn policies_per_level(&self) -> usize {
        self.policies.len() + self.closed.len()
    }
}

/// Mean isolated service time (milliseconds) of the model/batch mix the
/// open-loop stream draws from, used to calibrate offered load. Uses the
/// same default sequence lengths as [`prema_core::TaskRequest::new`], so it
/// matches the generated requests up to sequence-length noise.
///
/// Plans are compiled for `npu` (its microarchitecture sets the cycle
/// counts), but cycles convert to milliseconds at the *Table I* frequency —
/// the clock [`generate_open_loop`] timestamps the arrival timeline with —
/// so the load calibration stays correct for non-default NPU frequencies
/// (rate and service time must live on the same timeline).
pub fn mean_service_ms(models: &[ModelKind], batch_sizes: &[u64], npu: &NpuConfig) -> f64 {
    assert!(!models.is_empty() && !batch_sizes.is_empty());
    let timeline = NpuConfig::paper_default();
    let mut total = 0.0;
    for &model in models {
        for &batch in batch_sizes {
            let seq = SeqSpec::for_model(model, 20);
            let plan = ExecutionPlan::compile_cached(model, batch, seq, npu);
            total += timeline.cycles_to_millis(plan.total_cycles());
        }
    }
    total / (models.len() * batch_sizes.len()) as f64
}

/// The arrival rate (requests per millisecond) that offers load `rho` to a
/// cluster of `nodes` servers with mean service time `service_ms`.
pub fn offered_rate_per_ms(rho: f64, nodes: usize, service_ms: f64) -> f64 {
    rho * nodes as f64 / service_ms
}

/// Which dispatch path a sweep cell ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Front-end ledgers, commit before simulating.
    Open,
    /// Online event loop over live node state.
    Closed,
}

impl DispatchMode {
    /// The stable report label.
    pub fn label(self) -> &'static str {
        match self {
            DispatchMode::Open => "open",
            DispatchMode::Closed => "closed",
        }
    }
}

/// One cell of the sweep: a (load, mode, policy) triple.
#[derive(Debug, Clone)]
pub struct ClusterCell {
    /// Offered load (fraction of cluster capacity).
    pub load: f64,
    /// The calibrated arrival rate, requests per millisecond.
    pub rate_per_ms: f64,
    /// Open-loop or closed-loop dispatch.
    pub mode: DispatchMode,
    /// The dispatch policy / variant label.
    pub policy: &'static str,
    /// Number of requests in the stream.
    pub requests: usize,
    /// Number of requests actually served (less than `requests` only when
    /// closed-loop admission shed work).
    pub served: usize,
    /// Requests shed by admission control (closed loop only).
    pub shed: usize,
    /// Work-stealing migrations (closed loop only).
    pub steals: u64,
    /// Total scheduler wakeups across the cluster.
    pub events: u64,
    /// Wall-clock seconds this cell's simulation took (measurement only —
    /// never part of the deterministic digest).
    pub wall_s: f64,
    /// The cluster serving metrics over the served work.
    pub metrics: ClusterMetrics,
    /// The deterministic outcome digest of this cell.
    pub hash: u64,
}

/// Runs the (load x policy) cluster sweep over both dispatch paths. Cells
/// are laid out load-major: each load level lists the open-loop policies in
/// option order, then the closed-loop variants, and every cell at one load
/// level replays the identical request stream.
///
/// # Panics
///
/// Panics if the options are invalid.
pub fn run_cluster_sweep(opts: &ClusterSweepOptions) -> Vec<ClusterCell> {
    if let Err(msg) = opts.validate() {
        panic!("invalid ClusterSweepOptions: {msg}");
    }
    let predictor = build_predictor(&opts.npu, opts.seed);
    let template = OpenLoopConfig::poisson(1.0, opts.duration_ms);
    let service_ms = mean_service_ms(&template.models, &template.batch_sizes, &opts.npu);

    let mut cells = Vec::with_capacity(opts.loads.len() * opts.policies_per_level());
    for (level, &load) in opts.loads.iter().enumerate() {
        let rate = offered_rate_per_ms(load, opts.nodes, service_ms);
        let config = OpenLoopConfig::poisson(rate, opts.duration_ms);
        let mut rng = StdRng::seed_from_u64(run_seed(opts.seed, level));
        let spec = generate_open_loop(&config, &mut rng);
        let prepared = prepare_workload(&spec, &opts.npu, Some(&predictor));
        for &policy in &opts.policies {
            let cluster = ClusterSimulator::new(ClusterConfig {
                nodes: opts.nodes,
                npu: opts.npu.clone(),
                scheduler: opts.scheduler.clone(),
                dispatch: policy,
                // Per-level seed: the random baseline redraws per level but
                // stays a pure function of the sweep seed.
                dispatch_seed: run_seed(opts.seed, 0x1000 + level),
                parallel: opts.parallel,
            });
            let start = Instant::now();
            let outcome = cluster.run(&prepared.tasks);
            let wall_s = start.elapsed().as_secs_f64();
            cells.push(ClusterCell {
                load,
                rate_per_ms: rate,
                mode: DispatchMode::Open,
                policy: policy.label(),
                requests: spec.len(),
                served: outcome.task_count(),
                shed: 0,
                steals: 0,
                events: outcome.scheduler_invocations(),
                wall_s,
                hash: outcome_hash(&outcome),
                metrics: ClusterMetrics::from_outcome(&outcome, &opts.npu),
            });
        }
        for &variant in &opts.closed {
            let online = OnlineClusterSimulator::new(variant.config(
                opts.nodes,
                opts.scheduler.clone(),
                opts.npu.clone(),
            ));
            let start = Instant::now();
            let outcome = online.run(&prepared.tasks);
            let wall_s = start.elapsed().as_secs_f64();
            cells.push(ClusterCell {
                load,
                rate_per_ms: rate,
                mode: DispatchMode::Closed,
                policy: variant.label(),
                requests: spec.len(),
                served: outcome.served(),
                shed: outcome.shed.len(),
                steals: outcome.steals,
                events: outcome.cluster.scheduler_invocations(),
                wall_s,
                hash: online_outcome_hash(&outcome),
                metrics: ClusterMetrics::from_outcome(&outcome.cluster, &opts.npu),
            });
        }
    }
    cells
}

/// Folds every cell digest into one sweep-identity digest — the value the
/// `throughput cluster` baseline gate compares across runs (see
/// [`prema_cluster::outcome_hash`] for the portability caveat).
pub fn sweep_hash(cells: &[ClusterCell]) -> u64 {
    prema_cluster::fold_hashes(cells.iter().map(|cell| cell.hash))
}

/// The cell for (load, policy label), if it was swept. Labels are unique
/// across modes, so the label alone identifies the cell.
pub fn cell_of<'a>(cells: &'a [ClusterCell], load: f64, policy: &str) -> Option<&'a ClusterCell> {
    cells
        .iter()
        .find(|c| (c.load - load).abs() < 1e-12 && c.policy == policy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::ALL_EVAL_MODELS;

    #[test]
    fn mean_service_time_is_milliseconds() {
        let npu = NpuConfig::paper_default();
        let ms = mean_service_ms(&ALL_EVAL_MODELS, &[1], &npu);
        assert!(ms > 0.5 && ms < 50.0, "{ms}");
        // Offered-load calibration scales linearly.
        let rate = offered_rate_per_ms(0.5, 4, ms);
        assert!((rate * ms / 4.0 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sweep_is_deterministic_and_shapes_match() {
        let opts = ClusterSweepOptions::quick();
        let a = run_cluster_sweep(&opts);
        let b = run_cluster_sweep(&opts);
        assert_eq!(a.len(), opts.loads.len() * opts.policies_per_level());
        assert_eq!(sweep_hash(&a), sweep_hash(&b));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.hash, y.hash);
            assert_eq!(x.metrics, y.metrics);
        }
        // All policies at one load level see the same stream, and the layout
        // is open policies first, then closed variants.
        let per_level = opts.policies_per_level();
        for level in 0..opts.loads.len() {
            let row = &a[level * per_level..(level + 1) * per_level];
            assert!(row.iter().all(|c| c.requests == row[0].requests));
            for (i, cell) in row.iter().enumerate() {
                let expected = if i < opts.policies.len() {
                    DispatchMode::Open
                } else {
                    DispatchMode::Closed
                };
                assert_eq!(cell.mode, expected);
            }
        }
    }

    #[test]
    fn labels_are_unique_across_modes() {
        let mut labels: Vec<&str> = DispatchPolicy::ALL
            .iter()
            .map(|p| p.label())
            .chain(ClosedLoopVariant::ALL.iter().map(|v| v.label()))
            .collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(
            labels.len(),
            DispatchPolicy::ALL.len() + ClosedLoopVariant::ALL.len()
        );
    }

    #[test]
    fn predictive_beats_random_on_queueing_delay_at_high_load() {
        let opts = ClusterSweepOptions::quick();
        let cells = run_cluster_sweep(&opts);
        let top = *opts
            .loads
            .iter()
            .max_by(|a, b| a.partial_cmp(b).unwrap())
            .unwrap();
        let random = cell_of(&cells, top, "random").unwrap();
        let predictive = cell_of(&cells, top, "predictive").unwrap();
        assert!(
            predictive.metrics.mean_queueing_delay_ms < random.metrics.mean_queueing_delay_ms,
            "predictive {:.3} ms should beat random {:.3} ms at load {top}",
            predictive.metrics.mean_queueing_delay_ms,
            random.metrics.mean_queueing_delay_ms
        );
    }

    #[test]
    fn closed_loop_reactive_dispatch_beats_open_loop_predictive_p99_at_peak_load() {
        // The committed-baseline sweep (the BENCH_cluster.json surface):
        // this is the acceptance comparison the closed loop exists for, so
        // pin it at the exact configuration the baseline reports.
        // Keep the baseline's load ladder so the 0.95 stream is the exact
        // per-level seeded stream the committed baseline reports.
        let opts = ClusterSweepOptions {
            policies: vec![DispatchPolicy::Predictive],
            closed: vec![
                ClosedLoopVariant::Predictive,
                ClosedLoopVariant::WorkStealing,
            ],
            ..ClusterSweepOptions::baseline()
        };
        let cells = run_cluster_sweep(&opts);
        let open = cell_of(&cells, 0.95, "predictive").unwrap();
        for reactive_label in ["predictive-live", "work-steal"] {
            let reactive = cell_of(&cells, 0.95, reactive_label).unwrap();
            assert_eq!(reactive.served, reactive.requests, "no shedding configured");
            assert!(
                reactive.metrics.p99_ms < open.metrics.p99_ms,
                "closed-loop {reactive_label} p99 {:.3} ms should beat open-loop predictive \
                 p99 {:.3} ms at rho=0.95",
                reactive.metrics.p99_ms,
                open.metrics.p99_ms
            );
        }
    }

    #[test]
    fn higher_load_raises_queueing_delay() {
        let opts = ClusterSweepOptions::quick();
        let cells = run_cluster_sweep(&opts);
        let low = cell_of(&cells, 0.6, "predictive").unwrap();
        let high = cell_of(&cells, 0.95, "predictive").unwrap();
        assert!(high.requests > low.requests);
        assert!(
            high.metrics.mean_queueing_delay_ms >= low.metrics.mean_queueing_delay_ms,
            "queueing delay should not shrink as load grows ({:.3} vs {:.3})",
            low.metrics.mean_queueing_delay_ms,
            high.metrics.mean_queueing_delay_ms
        );
    }

    #[test]
    fn validation_rejects_bad_options() {
        for bad in [
            ClusterSweepOptions {
                nodes: 0,
                ..ClusterSweepOptions::quick()
            },
            ClusterSweepOptions {
                loads: vec![],
                ..ClusterSweepOptions::quick()
            },
            ClusterSweepOptions {
                loads: vec![0.0],
                ..ClusterSweepOptions::quick()
            },
            ClusterSweepOptions {
                policies: vec![],
                closed: vec![],
                ..ClusterSweepOptions::quick()
            },
            ClusterSweepOptions {
                duration_ms: -5.0,
                ..ClusterSweepOptions::quick()
            },
        ] {
            assert!(bad.validate().is_err());
        }
        assert!(ClusterSweepOptions::baseline().validate().is_ok());
        // Closed-only sweeps are valid.
        assert!(ClusterSweepOptions {
            policies: vec![],
            ..ClusterSweepOptions::quick()
        }
        .validate()
        .is_ok());
    }
}
