//! The partition-tolerance benchmark: redirect-with-backoff custody vs
//! abandoning checkpoints on the first failed transfer.
//!
//! This sweep answers the question the custody layer exists for: *when the
//! interconnect itself turns lossy — links dropping and throttling while
//! stragglers force evacuations across them — does holding custody of an
//! in-flight checkpoint and redirecting it beat giving up?* For each
//! link-MTBF level it generates one seeded open-loop request stream, one
//! seeded straggler (degrade) schedule and one seeded link-fault schedule,
//! then serves the identical driving twice — once under
//! [`CustodyConfig::redirect`] and once under
//! [`CustodyConfig::abandon_on_failure`]. Both cells run through **both**
//! closed-loop drivers and are asserted bit-identical, every cell asserts
//! exactly-once conservation (served ∪ shed ∪ abandoned == generated, with
//! custody reconciliation clean), and the per-cell digests fold into the
//! sweep hash the `throughput cluster-partition --check-baseline` gate
//! compares.
//!
//! The headline comparison is goodput *and* lost-request-inclusive p99
//! turnaround per MTBF level: redirect must beat abandon on both at a
//! majority of levels (the committed `BENCH_cluster_partition.json`
//! records the margins). The p99 here deliberately refuses survivorship
//! bias — a policy must not look fast by deleting its slowest requests —
//! so every abandoned request enters the distribution at the wait its
//! client actually observed: arrival until the end of the run, when it
//! still had nothing.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use npu_sim::{Cycles, NpuConfig};
use prema_cluster::{
    online_outcome_hash, ClusterFaultPlan, CustodyConfig, MigrationConfig, OnlineClusterConfig,
    OnlineClusterSimulator, OnlineDispatchPolicy, OnlineOutcome,
};
use prema_core::SchedulerConfig;
use prema_metrics::percentile;
use prema_workload::arrivals::{generate_open_loop, OpenLoopConfig};
use prema_workload::prepare::prepare_workload;
use prema_workload::{FaultProcess, LinkFaultProcess};

use crate::cluster::{mean_service_ms, offered_rate_per_ms};
use crate::suite::{build_predictor, run_seed};

/// Options controlling a partition-tolerance sweep.
#[derive(Debug, Clone)]
pub struct PartitionSweepOptions {
    /// Cluster size.
    pub nodes: usize,
    /// Offered load (fraction of cluster capacity).
    pub rho: f64,
    /// RNG seed; per-level request streams, degrade schedules and link
    /// schedules derive from it.
    pub seed: u64,
    /// Length of each generated arrival window, in milliseconds.
    pub duration_ms: f64,
    /// The link-MTBF levels to sweep: mean up-time between fault windows
    /// on one directed link, in milliseconds. Lower is stormier.
    pub link_mtbf_levels_ms: Vec<f64>,
    /// Mean link fault-window length, in milliseconds.
    pub link_outage_ms: f64,
    /// Fraction of link fault windows that throttle bandwidth instead of
    /// severing the link outright.
    pub degraded_link_fraction: f64,
    /// Throttled-window bandwidth, as a `(num, den)` fraction of nominal.
    pub link_bandwidth: (u32, u32),
    /// How many nodes straggle (nodes `0..degraded_nodes` receive degrade
    /// windows) — the force that makes checkpoints cross the fabric at all.
    pub degraded_nodes: usize,
    /// The straggler clock as a `(num, den)` fraction of full speed.
    pub degrade_speed: (u32, u32),
    /// Mean time between degrade windows per straggler node, in
    /// milliseconds.
    pub degrade_mtbf_ms: f64,
    /// Mean degrade-window length, in milliseconds.
    pub degrade_window_ms: f64,
    /// The migration SLA, as a multiple of the mean service time.
    pub sla_multiplier: f64,
    /// The custody delivery deadline, in milliseconds — transfers still in
    /// flight past this fail with a timeout.
    pub delivery_timeout_ms: f64,
    /// The redirect cell's retry budget. The exponential backoff span must
    /// outlive a typical link fault window, or every retry lands back in
    /// the same outage and redirect degenerates into slow abandonment.
    pub retry_budget: u32,
    /// The redirect cell's backoff base, in milliseconds: retry `k` waits
    /// `base * 2^(k-1)` before re-picking a target.
    pub backoff_base_ms: f64,
    /// The per-node scheduler.
    pub scheduler: SchedulerConfig,
    /// The per-node NPU configuration.
    pub npu: NpuConfig,
    /// Wall-clock repetitions per (cell, driver); the minimum is reported.
    pub repetitions: usize,
}

impl PartitionSweepOptions {
    /// The committed-baseline sweep: 4 PREMA nodes at 70 % offered load,
    /// 400 ms runs, two straggler nodes at 1/8 speed forcing evacuations,
    /// and per-link fault windows at 120/60/30 ms MTBF. Most windows
    /// throttle the link to 1/64 bandwidth rather than severing it — the
    /// lossy regime where transfers launch, blow the delivery deadline
    /// mid-flight, and force the custody policy to choose.
    pub fn baseline() -> Self {
        PartitionSweepOptions {
            nodes: 4,
            rho: 0.75,
            seed: 2020,
            duration_ms: 400.0,
            link_mtbf_levels_ms: vec![60.0, 30.0, 15.0],
            link_outage_ms: 80.0,
            degraded_link_fraction: 0.9,
            link_bandwidth: (1, 128),
            degraded_nodes: 2,
            degrade_speed: (1, 8),
            degrade_mtbf_ms: 120.0,
            degrade_window_ms: 150.0,
            sla_multiplier: 8.0,
            delivery_timeout_ms: 0.5,
            retry_budget: 6,
            backoff_base_ms: 2.0,
            scheduler: SchedulerConfig::paper_default(),
            npu: NpuConfig::paper_default(),
            repetitions: 3,
        }
    }

    /// A reduced sweep for unit tests and quick local runs.
    pub fn quick() -> Self {
        PartitionSweepOptions {
            nodes: 3,
            degraded_nodes: 1,
            duration_ms: 120.0,
            link_mtbf_levels_ms: vec![20.0],
            link_outage_ms: 25.0,
            degrade_mtbf_ms: 50.0,
            degrade_window_ms: 45.0,
            repetitions: 1,
            ..PartitionSweepOptions::baseline()
        }
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < 2 {
            return Err("custody transfers need at least two nodes".into());
        }
        if !self.rho.is_finite() || self.rho <= 0.0 {
            return Err("rho must be positive and finite".into());
        }
        if !self.duration_ms.is_finite() || self.duration_ms <= 0.0 {
            return Err("duration must be positive and finite".into());
        }
        if self.link_mtbf_levels_ms.is_empty() {
            return Err("at least one link-MTBF level is required".into());
        }
        if self
            .link_mtbf_levels_ms
            .iter()
            .any(|mtbf| !mtbf.is_finite() || *mtbf <= 0.0)
        {
            return Err("every link MTBF must be positive and finite".into());
        }
        if self.degraded_nodes == 0 || self.degraded_nodes >= self.nodes {
            return Err(
                "the straggler set must be non-empty and leave at least one healthy node".into(),
            );
        }
        let (num, den) = self.degrade_speed;
        if num == 0 || num >= den {
            return Err("the degrade speed must be a proper fraction (0 < num < den)".into());
        }
        if !self.degrade_mtbf_ms.is_finite() || self.degrade_mtbf_ms <= 0.0 {
            return Err("degrade MTBF must be positive and finite".into());
        }
        if !self.degrade_window_ms.is_finite() || self.degrade_window_ms <= 0.0 {
            return Err("degrade window must be positive and finite".into());
        }
        if !self.sla_multiplier.is_finite() || self.sla_multiplier <= 0.0 {
            return Err("SLA multiplier must be positive and finite".into());
        }
        if !self.delivery_timeout_ms.is_finite() || self.delivery_timeout_ms <= 0.0 {
            return Err("delivery timeout must be positive and finite".into());
        }
        let (bw_num, bw_den) = self.link_bandwidth;
        if bw_num == 0 || bw_num >= bw_den {
            return Err("the throttled bandwidth must be a proper fraction (0 < num < den)".into());
        }
        if self.retry_budget == 0 {
            return Err("the redirect cell needs a positive retry budget".into());
        }
        if !self.backoff_base_ms.is_finite() || self.backoff_base_ms <= 0.0 {
            return Err("the backoff base must be positive and finite".into());
        }
        if self.repetitions == 0 {
            return Err("at least one repetition is required".into());
        }
        // The link process carries its own invariants (outage length,
        // degraded fraction, bandwidth fraction); surface its typed error.
        LinkFaultProcess::outages(
            self.nodes,
            self.link_mtbf_levels_ms[0],
            self.link_outage_ms,
            self.duration_ms,
        )
        .with_degraded(
            self.degraded_link_fraction,
            self.link_bandwidth.0,
            self.link_bandwidth.1,
        )
        .validate()
        .map_err(|e| e.to_string())?;
        self.npu.validate()?;
        self.scheduler.validate()?;
        Ok(())
    }
}

/// One cell of the partition sweep: a (link-MTBF, custody-policy) pair
/// measured under both drivers on the identical driving.
#[derive(Debug, Clone)]
pub struct PartitionCell {
    /// Mean up-time between fault windows per directed link, milliseconds.
    pub link_mtbf_ms: f64,
    /// The policy label (`redirect` or `abandon`).
    pub policy: &'static str,
    /// Number of requests in the stream.
    pub requests: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Requests abandoned (custody losses included).
    pub abandoned: usize,
    /// Link fault windows in the schedule (identical across policies).
    pub link_faults: usize,
    /// Checkpoint evacuations launched.
    pub migrations: u64,
    /// In-flight transfers that failed (drop, timeout, dead destination,
    /// or no reachable redirect target).
    pub transfer_failures: u64,
    /// Failed transfers redirected instead of abandoned.
    pub redirects: u64,
    /// Useful served work per unit of provisioned capacity over the
    /// level's common observation horizon (the longer of the two paired
    /// makespans) — a policy must not raise its goodput by abandoning work
    /// and ending the run early.
    pub goodput: f64,
    /// Lost-request-inclusive 99th-percentile turnaround, milliseconds: an
    /// abandoned request never completes, so it enters the distribution at
    /// infinity (the convention [`prema_cluster::ClusterMetrics`] already
    /// uses for its SLA curve). Infinite whenever roughly a percent or
    /// more of the stream was lost.
    pub p99_ms: f64,
    /// Total scheduler wakeups (identical under both drivers).
    pub events: u64,
    /// Best event-heap wall clock, seconds.
    pub wall_s: f64,
    /// The deterministic outcome digest (identical under both drivers).
    pub hash: u64,
}

fn timed<F: FnMut() -> OnlineOutcome>(mut run: F, repetitions: usize) -> (OnlineOutcome, f64) {
    let mut best = f64::INFINITY;
    let mut outcome: Option<OnlineOutcome> = None;
    for _ in 0..repetitions {
        let start = Instant::now();
        let this = run();
        let wall = start.elapsed().as_secs_f64();
        best = best.min(wall);
        if let Some(previous) = &outcome {
            assert_eq!(previous, &this, "nondeterministic partitioned run");
        }
        outcome = Some(this);
    }
    (outcome.expect("at least one repetition"), best)
}

/// The lost-request-inclusive p99: served turnarounds plus, for every
/// abandoned request, an infinite turnaround — the request never
/// completed, and a policy must not look fast by deleting its slowest
/// requests.
fn lost_inclusive_p99_ms(outcome: &OnlineOutcome, npu: &NpuConfig) -> f64 {
    let mut waits: Vec<f64> = outcome
        .cluster
        .merged_records()
        .iter()
        .map(|record| npu.cycles_to_millis(record.turnaround()))
        .collect();
    waits.extend(outcome.abandoned.iter().map(|_| f64::INFINITY));
    percentile(&waits, 99.0).unwrap_or(0.0)
}

/// Useful served work per unit of provisioned capacity over a shared
/// observation horizon.
fn horizon_goodput(outcome: &OnlineOutcome, nodes: usize, horizon: Cycles) -> f64 {
    let provisioned = horizon.get() as f64 * nodes as f64;
    if provisioned == 0.0 {
        return 0.0;
    }
    let useful: Cycles = outcome
        .cluster
        .merged_records()
        .iter()
        .map(|record| record.isolated_cycles)
        .sum();
    useful.get() as f64 / provisioned
}

/// Runs the partition sweep. Cells are laid out MTBF-major, redirect
/// before abandon; per level both policies answer the *identical* request
/// stream, degrade schedule and link schedule, so the comparison is
/// paired. Every cell's reference and event-heap outcomes are asserted
/// bit-identical, every cell asserts exactly-once conservation with clean
/// custody reconciliation, and interconnect byte accounting.
///
/// # Panics
///
/// Panics if the options are invalid, if the two drivers ever diverge, if
/// any request is lost or duplicated, or if the custody ledger reports an
/// undelivered task at end of run.
pub fn run_partition_sweep(opts: &PartitionSweepOptions) -> Vec<PartitionCell> {
    if let Err(msg) = opts.validate() {
        panic!("invalid PartitionSweepOptions: {msg}");
    }
    let predictor = build_predictor(&opts.npu, opts.seed);
    let template = OpenLoopConfig::poisson(1.0, opts.duration_ms);
    let service_ms = mean_service_ms(&template.models, &template.batch_sizes, &opts.npu);
    let rate = offered_rate_per_ms(opts.rho, opts.nodes, service_ms);
    let sla_ms = opts.sla_multiplier * service_ms;
    let (speed_num, speed_den) = opts.degrade_speed;

    let mut cells = Vec::with_capacity(opts.link_mtbf_levels_ms.len() * 2);
    for (level, &link_mtbf_ms) in opts.link_mtbf_levels_ms.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(run_seed(opts.seed, level));
        let spec = generate_open_loop(&OpenLoopConfig::poisson(rate, opts.duration_ms), &mut rng);
        let prepared = prepare_workload(&spec, &opts.npu, Some(&predictor));
        // One driving per level: arrivals, then the straggler windows that
        // force evacuations, then the link windows those evacuations must
        // cross — all from the same per-level stream, answered by both
        // custody policies.
        let schedule = FaultProcess::crashes(
            opts.degraded_nodes,
            opts.degrade_mtbf_ms,
            opts.degrade_window_ms,
            opts.duration_ms,
        )
        .with_degradation(1.0, speed_num, speed_den)
        .generate(&mut rng);
        let links = LinkFaultProcess::outages(
            opts.nodes,
            link_mtbf_ms,
            opts.link_outage_ms,
            opts.duration_ms,
        )
        .with_degraded(
            opts.degraded_link_fraction,
            opts.link_bandwidth.0,
            opts.link_bandwidth.1,
        )
        .generate(&mut rng);
        let schedule = schedule.with_links(links);
        let link_faults = schedule.links.len();

        let mut redirect = CustodyConfig::redirect();
        redirect.recovery.retry_budget = opts.retry_budget;
        redirect.recovery.backoff_base_ms = opts.backoff_base_ms;
        let mut outcomes = Vec::with_capacity(2);
        for (label, custody) in [
            ("redirect", redirect),
            ("abandon", CustodyConfig::abandon_on_failure()),
        ] {
            let migration = MigrationConfig::new(sla_ms)
                .with_custody(custody.with_timeout_ms(opts.delivery_timeout_ms));
            let config = OnlineClusterConfig::new(
                opts.nodes,
                opts.scheduler.clone(),
                OnlineDispatchPolicy::Predictive,
            )
            .with_faults(ClusterFaultPlan::new(schedule.clone()))
            .with_migration(migration);
            let online = OnlineClusterSimulator::new(config);
            let (reference, _) = timed(|| online.run_reference(&prepared.tasks), opts.repetitions);
            let (heap, wall_s) = timed(|| online.run(&prepared.tasks), opts.repetitions);
            assert_eq!(
                heap, reference,
                "event-heap loop diverged from the stepping reference at \
                 link MTBF {link_mtbf_ms} ms under {label}"
            );
            // Exactly-once custody: every generated request is exactly one
            // of served, shed, or abandoned — and the ledger closed clean.
            assert!(
                heap.custody_error.is_none(),
                "custody reconciliation failed at link MTBF {link_mtbf_ms} ms under {label}: {}",
                heap.custody_error.as_ref().expect("checked above")
            );
            let mut accounted: Vec<u64> = heap
                .cluster
                .merged_records()
                .iter()
                .map(|r| r.id.0)
                .chain(heap.shed.iter().map(|r| r.id.0))
                .chain(heap.abandoned.iter().map(|r| r.id.0))
                .collect();
            accounted.sort_unstable();
            let expected_len = accounted.len();
            accounted.dedup();
            assert_eq!(
                accounted.len(),
                expected_len,
                "a request was double-counted at link MTBF {link_mtbf_ms} ms under {label}"
            );
            let mut expected: Vec<u64> = prepared.tasks.iter().map(|t| t.request.id.0).collect();
            expected.sort_unstable();
            assert_eq!(
                accounted, expected,
                "task conservation violated at link MTBF {link_mtbf_ms} ms under {label}"
            );
            assert_eq!(
                heap.migration_bytes,
                heap.migration_log.iter().map(|r| r.bytes).sum::<u64>(),
                "interconnect byte accounting diverged at link MTBF {link_mtbf_ms} ms \
                 under {label}"
            );
            outcomes.push((label, heap, wall_s));
        }
        // The pair shares one observation horizon — the longer of the two
        // makespans — so a policy cannot raise its goodput by abandoning
        // work and ending the run early.
        let horizon = outcomes
            .iter()
            .map(|(_, heap, _)| heap.cluster.makespan())
            .max()
            .expect("two policies ran");
        for (label, heap, wall_s) in outcomes {
            cells.push(PartitionCell {
                link_mtbf_ms,
                policy: label,
                requests: prepared.tasks.len(),
                served: heap.served(),
                abandoned: heap.abandoned.len(),
                link_faults,
                migrations: heap.migrations,
                transfer_failures: heap.transfer_failures,
                redirects: heap.redirects,
                goodput: horizon_goodput(&heap, opts.nodes, horizon),
                p99_ms: lost_inclusive_p99_ms(&heap, &opts.npu),
                events: heap.cluster.scheduler_invocations(),
                wall_s,
                hash: online_outcome_hash(&heap),
            });
        }
    }
    cells
}

/// Counts the MTBF levels where redirect beats abandon on *both* goodput
/// and lost-request-inclusive p99 — the paired headline the baseline gate
/// requires at a majority of levels.
pub fn partition_wins(cells: &[PartitionCell]) -> usize {
    cells
        .chunks(2)
        .filter(|pair| {
            pair.len() == 2
                && pair[0].policy == "redirect"
                && pair[1].policy == "abandon"
                && pair[0].goodput > pair[1].goodput
                && pair[0].p99_ms < pair[1].p99_ms
        })
        .count()
}

/// Folds every cell digest into the sweep-identity digest the
/// `throughput cluster-partition` baseline gate compares.
pub fn partition_sweep_hash(cells: &[PartitionCell]) -> u64 {
    prema_cluster::fold_hashes(cells.iter().map(|cell| cell.hash))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_partition_sweep_is_deterministic_and_exercises_custody() {
        let opts = PartitionSweepOptions::quick();
        let a = run_partition_sweep(&opts);
        let b = run_partition_sweep(&opts);
        assert_eq!(a.len(), opts.link_mtbf_levels_ms.len() * 2);
        assert_eq!(partition_sweep_hash(&a), partition_sweep_hash(&b));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.hash, y.hash);
            assert_eq!(x.served, y.served);
        }
        // Both policies answered the same driving: same stream, same link
        // windows, different custody outcomes.
        let redirect = &a[0];
        let abandon = &a[1];
        assert_eq!(redirect.policy, "redirect");
        assert_eq!(abandon.policy, "abandon");
        assert_eq!(redirect.requests, abandon.requests);
        assert_eq!(redirect.link_faults, abandon.link_faults);
        assert!(redirect.link_faults > 0, "the process must fault links");
        assert!(redirect.migrations > 0, "stragglers must force evacuation");
    }

    #[test]
    fn validation_rejects_bad_options() {
        for bad in [
            PartitionSweepOptions {
                nodes: 1,
                degraded_nodes: 0,
                ..PartitionSweepOptions::quick()
            },
            PartitionSweepOptions {
                rho: -1.0,
                ..PartitionSweepOptions::quick()
            },
            PartitionSweepOptions {
                link_mtbf_levels_ms: vec![],
                ..PartitionSweepOptions::quick()
            },
            PartitionSweepOptions {
                link_mtbf_levels_ms: vec![0.0],
                ..PartitionSweepOptions::quick()
            },
            PartitionSweepOptions {
                degraded_link_fraction: 2.0,
                ..PartitionSweepOptions::quick()
            },
            PartitionSweepOptions {
                link_bandwidth: (2, 2),
                ..PartitionSweepOptions::quick()
            },
            PartitionSweepOptions {
                degrade_speed: (0, 8),
                ..PartitionSweepOptions::quick()
            },
            PartitionSweepOptions {
                delivery_timeout_ms: 0.0,
                ..PartitionSweepOptions::quick()
            },
            PartitionSweepOptions {
                repetitions: 0,
                ..PartitionSweepOptions::quick()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} should not validate");
        }
        assert!(PartitionSweepOptions::baseline().validate().is_ok());
    }
}
