//! The shared multi-policy evaluation harness behind Figures 11, 12, 13 and
//! 15: generate the Section III workloads, replay each one under a set of
//! scheduler configurations, and aggregate the Eyerman metrics, SLA curves
//! and tail latencies relative to the NP-FCFS baseline.
//!
//! The (run × configuration) simulation grid is embarrassingly parallel:
//! every cell is a pure function of the run's workload (derived from a
//! per-run seed, see [`run_seed`]) and the scheduler configuration. By
//! default the grid fans out over all cores via `rayon`; setting
//! [`SuiteOptions::parallel`] to `false` runs the same cells on one thread.
//! Both paths aggregate the cells in the same deterministic order, so their
//! results are bit-identical — the determinism regression test under
//! `tests/` asserts exactly that.
//!
//! The multi-NPU cluster serving sweep builds on the same harness plumbing
//! (per-level [`run_seed`] derivation, [`build_predictor`]); see
//! [`crate::cluster`], re-exported here as [`run_cluster_sweep`].

pub use crate::cluster::{run_cluster_sweep, ClusterSweepOptions};

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use dnn_models::{ModelKind, RNN_MODELS};
use npu_sim::NpuConfig;
use prema_core::plan::plan_cache;
use prema_core::{NpuSimulator, Priority, SchedulerConfig, SimOutcome};
use prema_metrics::{average_metrics, MultiTaskMetrics, Percentiles, SlaCurve, TaskOutcome};
use prema_predictor::{AnalyticalPredictor, EstimateCacheStats};
use prema_workload::generator::{generate_workload, WorkloadConfig};
use prema_workload::prepare::{
    outcomes_of, plan_keys, prepare_workload, prepare_workload_uncached, PreparedWorkload,
};
use prema_workload::seqlen::SeqLenCharacterization;

/// Options controlling a policy-comparison run.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Number of independent multi-tasked workloads (the paper averages 25).
    pub runs: usize,
    /// RNG seed for workload generation.
    pub seed: u64,
    /// Workload shape.
    pub workload: WorkloadConfig,
    /// NPU configuration.
    pub npu: NpuConfig,
    /// Whether to fan the (run × configuration) simulation grid out over all
    /// cores. Results are bit-identical either way; the serial path exists
    /// for baseline measurements and the determinism regression test.
    pub parallel: bool,
}

impl SuiteOptions {
    /// The paper's setup: 25 runs of 8-task workloads.
    pub fn paper() -> Self {
        SuiteOptions {
            runs: 25,
            seed: 2020,
            workload: WorkloadConfig::paper_default(),
            npu: NpuConfig::paper_default(),
            parallel: true,
        }
    }

    /// A reduced setup for quick runs and unit tests.
    pub fn quick() -> Self {
        SuiteOptions {
            runs: 3,
            ..SuiteOptions::paper()
        }
    }

    /// Overrides the run count.
    pub fn with_runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "at least one run is required");
        self.runs = runs;
        self
    }

    /// Disables the parallel fan-out (single-threaded reference path).
    pub fn serial(mut self) -> Self {
        self.parallel = false;
        self
    }
}

/// Derives the workload seed for run index `run` from the suite seed.
///
/// Each run draws its workload from an independent SplitMix64-derived seed
/// instead of consuming a single sequential RNG stream, so runs can be
/// generated and simulated in any order — in particular concurrently —
/// while remaining bit-identical to the serial schedule.
pub fn run_seed(base: u64, run: usize) -> u64 {
    let mut z = base
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((run as u64).wrapping_mul(0xd1b5_4a32_d192_ed03));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions::quick()
    }
}

/// Aggregated results of one scheduler configuration across all runs.
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// The configuration's paper-style label (e.g. "Dynamic-PREMA").
    pub label: String,
    /// Average raw metrics across runs.
    pub metrics: MultiTaskMetrics,
    /// ANTT improvement over NP-FCFS (higher is better).
    pub antt_improvement: f64,
    /// STP improvement over NP-FCFS (higher is better).
    pub stp_improvement: f64,
    /// Fairness improvement over NP-FCFS (higher is better).
    pub fairness_improvement: f64,
    /// SLA violation curve pooled over all tasks of all runs (Figure 13).
    pub sla: SlaCurve,
    /// 95th-percentile turnaround of high-priority tasks in milliseconds
    /// (Figure 14's metric, pooled across runs).
    pub high_priority_p95_ms: Option<f64>,
    /// Mean number of preemptions per run.
    pub mean_preemptions: f64,
}

/// Builds the analytical predictor used by the predictor-driven policies,
/// including the profiled sequence-length regression tables for the seq2seq
/// models (Section V-B).
pub fn build_predictor(npu: &NpuConfig, seed: u64) -> AnalyticalPredictor {
    // Mix the seed so the profiling pass and the workload generator do not
    // share a random stream.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut predictor = AnalyticalPredictor::new(npu.clone());
    for model in RNN_MODELS {
        if model.has_dynamic_output_len() {
            let table = SeqLenCharacterization::profile(model, 30, &mut rng).to_table();
            predictor = predictor.with_seq_table(model, table);
        }
    }
    predictor
}

/// Runs the full (run × configuration) simulation grid — every cell is an
/// independent [`SimOutcome`] — in parallel or serially per
/// [`SuiteOptions::parallel`]. Cells are laid out run-major with the given
/// configuration order, so `grid[run * configs.len() + c]` is run `run`
/// under `configs[c]`.
pub fn run_grid(configs: &[SchedulerConfig], opts: &SuiteOptions) -> Vec<SimOutcome> {
    run_grid_instrumented(configs, opts).0
}

/// [`run_grid`], additionally returning the hit/miss counters of the
/// estimate cache the grid's prepare phase consulted — the throughput
/// report surfaces them next to the plan cache's.
pub fn run_grid_instrumented(
    configs: &[SchedulerConfig],
    opts: &SuiteOptions,
) -> (Vec<SimOutcome>, EstimateCacheStats) {
    assert!(
        !configs.is_empty(),
        "at least one configuration is required"
    );
    assert!(opts.runs > 0, "at least one run is required");
    let predictor = build_predictor(&opts.npu, opts.seed);
    // Results are bit-identical either way, so fanning out buys nothing on a
    // single-core host — skip the dispatch overhead there.
    let parallel = opts.parallel && rayon::current_num_threads() > 1;

    // Phase 0: generate every run's workload spec (cheap, seeded RNG) and
    // warm the plan cache on the suite's unique (model, batch, seq) keys,
    // compiling each distinct plan exactly once — in parallel — before any
    // run touches the cache. Without this, the parallel prepare phase races
    // first touches of shared keys and compiles duplicates it then discards.
    let specs: Vec<_> = (0..opts.runs)
        .map(|run| {
            let mut rng = StdRng::seed_from_u64(run_seed(opts.seed, run));
            generate_workload(&opts.workload, &mut rng)
        })
        .collect();
    plan_cache::warm(&plan_keys(&specs), &opts.npu, parallel);

    // Phase 1: compile + estimate every run's workload. Plan compilation is
    // memoized process-wide (see `prema_core::plan::plan_cache`) and fully
    // warmed above, so every lookup here is a cache hit. Phase 2: simulate
    // every (run, config) cell. Each cell is a pure function of its
    // prepared workload and configuration, so execution order cannot affect
    // the results; cells are aggregated run-major either way.
    let prepare_run =
        |spec: &_| -> PreparedWorkload { prepare_workload(spec, &opts.npu, Some(&predictor)) };
    let outcomes = if parallel {
        let prepared: Vec<PreparedWorkload> = specs.par_iter().map(&prepare_run).collect();
        let cells: Vec<(usize, usize)> = (0..opts.runs)
            .flat_map(|run| (0..configs.len()).map(move |c| (run, c)))
            .collect();
        let simulate = |&(run, c): &(usize, usize)| -> SimOutcome {
            NpuSimulator::new(opts.npu.clone(), configs[c].clone()).run(&prepared[run].tasks)
        };
        cells.par_iter().map(&simulate).collect()
    } else {
        // One thread: interleave per run (prepare, then its cells) so each
        // run's task state stays cache-hot through its simulations.
        let mut outcomes = Vec::with_capacity(opts.runs * configs.len());
        for spec in &specs {
            let prepared = prepare_run(spec);
            for cfg in configs {
                outcomes
                    .push(NpuSimulator::new(opts.npu.clone(), cfg.clone()).run(&prepared.tasks));
            }
        }
        outcomes
    };
    let estimate_cache = predictor.cache_stats();
    (outcomes, estimate_cache)
}

/// The single-threaded, cache-free reference sweep over the same
/// (run × configuration) grid as [`run_grid`]: one thread, every plan
/// compiled from scratch per run, and the same per-run [`run_seed`]
/// derivation, so the two paths see identical workloads. (Note that
/// per-run derived seeds replaced the original single sequential RNG
/// stream, so generated workloads — and therefore absolute figure numbers —
/// differ from a pre-derivation sweep at the same `--seed`.) The throughput
/// bench measures this path's wall-clock against the fast path, and the
/// determinism regression test asserts the outcomes are bit-identical.
pub fn run_grid_reference(configs: &[SchedulerConfig], opts: &SuiteOptions) -> Vec<SimOutcome> {
    assert!(
        !configs.is_empty(),
        "at least one configuration is required"
    );
    assert!(opts.runs > 0, "at least one run is required");
    let predictor = build_predictor(&opts.npu, opts.seed);
    let mut outcomes = Vec::with_capacity(opts.runs * configs.len());
    for run in 0..opts.runs {
        let mut rng = StdRng::seed_from_u64(run_seed(opts.seed, run));
        let spec = generate_workload(&opts.workload, &mut rng);
        let prepared = prepare_workload_uncached(&spec, &opts.npu, Some(&predictor));
        for cfg in configs {
            outcomes.push(NpuSimulator::new(opts.npu.clone(), cfg.clone()).run(&prepared.tasks));
        }
    }
    outcomes
}

/// Runs every configuration in `configs` (plus the NP-FCFS baseline) over the
/// same sequence of generated workloads and aggregates the results.
pub fn run_configs(configs: &[SchedulerConfig], opts: &SuiteOptions) -> Vec<ConfigResult> {
    assert!(
        !configs.is_empty(),
        "at least one configuration is required"
    );
    assert!(opts.runs > 0, "at least one run is required");

    // Simulate the grid with the NP-FCFS baseline as column 0.
    let mut grid_configs = Vec::with_capacity(configs.len() + 1);
    grid_configs.push(SchedulerConfig::np_fcfs());
    grid_configs.extend(configs.iter().cloned());
    let grid = run_grid(&grid_configs, opts);
    let stride = grid_configs.len();

    // Aggregate in deterministic (run-outer, config-inner) order, identical
    // for the parallel and serial paths.
    let mut per_config_metrics: Vec<Vec<MultiTaskMetrics>> = vec![Vec::new(); configs.len()];
    let mut per_config_outcomes: Vec<Vec<TaskOutcome>> = vec![Vec::new(); configs.len()];
    let mut per_config_hp_ms: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut per_config_preemptions: Vec<u64> = vec![0; configs.len()];
    let mut baseline_metrics: Vec<MultiTaskMetrics> = Vec::new();

    for run in 0..opts.runs {
        let baseline_outcome = &grid[run * stride];
        baseline_metrics.push(MultiTaskMetrics::from_outcomes(&outcomes_of(
            &baseline_outcome.records,
        )));

        for i in 0..configs.len() {
            let outcome = &grid[run * stride + 1 + i];
            collect(
                outcome,
                &opts.npu,
                &mut per_config_metrics[i],
                &mut per_config_outcomes[i],
                &mut per_config_hp_ms[i],
                &mut per_config_preemptions[i],
            );
        }
    }

    let baseline_avg = average_metrics(&baseline_metrics);
    configs
        .iter()
        .enumerate()
        .map(|(i, cfg)| {
            let metrics = average_metrics(&per_config_metrics[i]);
            let sla = SlaCurve::sweep(&per_config_outcomes[i], (2..=20).map(|n| n as f64));
            let high_priority_p95_ms = Percentiles::summarize(&per_config_hp_ms[i]).map(|p| p.p95);
            ConfigResult {
                label: cfg.label(),
                antt_improvement: metrics.antt_improvement_over(&baseline_avg),
                stp_improvement: metrics.stp_improvement_over(&baseline_avg),
                fairness_improvement: metrics.fairness_improvement_over(&baseline_avg),
                metrics,
                sla,
                high_priority_p95_ms,
                mean_preemptions: per_config_preemptions[i] as f64 / opts.runs as f64,
            }
        })
        .collect()
}

fn collect(
    outcome: &SimOutcome,
    npu: &NpuConfig,
    metrics: &mut Vec<MultiTaskMetrics>,
    outcomes: &mut Vec<TaskOutcome>,
    hp_ms: &mut Vec<f64>,
    preemptions: &mut u64,
) {
    let run_outcomes = outcomes_of(&outcome.records);
    metrics.push(MultiTaskMetrics::from_outcomes(&run_outcomes));
    outcomes.extend(run_outcomes);
    hp_ms.extend(
        outcome
            .records
            .iter()
            .filter(|r| r.priority == Priority::High)
            .map(|r| npu.cycles_to_millis(r.turnaround())),
    );
    *preemptions += outcome.checkpoint_preemptions + outcome.kill_preemptions;
}

/// Convenience: isolated per-model execution times in milliseconds (batch 1),
/// used as the Figure 14 "Isolated" bars and for sanity checks.
pub fn isolated_latency_ms(model: ModelKind, npu: &NpuConfig) -> f64 {
    use dnn_models::SeqSpec;
    use prema_core::plan::ExecutionPlan;
    let seq = SeqSpec::for_model(model, 20);
    let plan = ExecutionPlan::compile(model, 1, seq, npu);
    npu.cycles_to_millis(plan.total_cycles())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prema_core::config::{PolicyKind, PreemptionMode};

    #[test]
    fn suite_runs_and_reports_improvements() {
        let opts = SuiteOptions {
            runs: 2,
            seed: 7,
            workload: WorkloadConfig {
                task_count: 4,
                ..WorkloadConfig::paper_default()
            },
            ..SuiteOptions::paper()
        };
        let configs = vec![
            SchedulerConfig::np_fcfs(),
            SchedulerConfig::named(PolicyKind::Prema, PreemptionMode::Dynamic),
        ];
        let results = run_configs(&configs, &opts);
        assert_eq!(results.len(), 2);
        // The baseline compared against itself has improvement ~1.
        assert!((results[0].antt_improvement - 1.0).abs() < 1e-9);
        // PREMA should never be worse than NP-FCFS on ANTT.
        assert!(
            results[1].antt_improvement >= 0.99,
            "{}",
            results[1].antt_improvement
        );
        assert!(!results[1].sla.points().is_empty());
        assert_eq!(results[1].label, "Dynamic-PREMA");
    }

    #[test]
    fn options_presets() {
        assert_eq!(SuiteOptions::paper().runs, 25);
        assert_eq!(SuiteOptions::quick().runs, 3);
        assert_eq!(SuiteOptions::default().runs, 3);
        assert_eq!(SuiteOptions::quick().with_runs(7).runs, 7);
        assert!(SuiteOptions::paper().parallel);
        assert!(!SuiteOptions::paper().serial().parallel);
    }

    #[test]
    fn run_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..32).map(|run| run_seed(2020, run)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "per-run seeds must not collide");
        assert_eq!(run_seed(2020, 5), run_seed(2020, 5));
        assert_ne!(run_seed(2020, 5), run_seed(2021, 5));
    }

    #[test]
    fn parallel_and_serial_grids_are_bit_identical() {
        let opts = SuiteOptions {
            runs: 3,
            seed: 13,
            workload: WorkloadConfig {
                task_count: 4,
                ..WorkloadConfig::paper_default()
            },
            ..SuiteOptions::paper()
        };
        let configs = vec![
            SchedulerConfig::np_fcfs(),
            SchedulerConfig::named(PolicyKind::Prema, PreemptionMode::Dynamic),
        ];
        let parallel = run_grid(&configs, &opts);
        let serial = run_grid(&configs, &opts.clone().serial());
        assert_eq!(parallel, serial);
        // The one-pass record aggregates agree cell-by-cell too (summary()
        // is bit-identical to the two-pass antt()/stp() accessors).
        for (a, b) in parallel.iter().zip(&serial) {
            let (sa, sb) = (a.summary(), b.summary());
            assert_eq!(sa, sb);
            assert_eq!(sa.antt, a.antt());
            assert_eq!(sa.stp, a.stp());
        }
    }

    #[test]
    fn isolated_latencies_are_milliseconds() {
        let npu = NpuConfig::paper_default();
        let vgg = isolated_latency_ms(ModelKind::CnnVggNet, &npu);
        assert!(vgg > 1.0 && vgg < 45.0, "{vgg}");
    }
}
