//! The shared multi-policy evaluation harness behind Figures 11, 12, 13 and
//! 15: generate the Section III workloads, replay each one under a set of
//! scheduler configurations, and aggregate the Eyerman metrics, SLA curves
//! and tail latencies relative to the NP-FCFS baseline.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dnn_models::{ModelKind, RNN_MODELS};
use npu_sim::NpuConfig;
use prema_core::{NpuSimulator, Priority, SchedulerConfig, SimOutcome};
use prema_metrics::{average_metrics, MultiTaskMetrics, Percentiles, SlaCurve, TaskOutcome};
use prema_predictor::AnalyticalPredictor;
use prema_workload::generator::{generate_workload, WorkloadConfig};
use prema_workload::prepare::{outcomes_of, prepare_workload};
use prema_workload::seqlen::SeqLenCharacterization;

/// Options controlling a policy-comparison run.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Number of independent multi-tasked workloads (the paper averages 25).
    pub runs: usize,
    /// RNG seed for workload generation.
    pub seed: u64,
    /// Workload shape.
    pub workload: WorkloadConfig,
    /// NPU configuration.
    pub npu: NpuConfig,
}

impl SuiteOptions {
    /// The paper's setup: 25 runs of 8-task workloads.
    pub fn paper() -> Self {
        SuiteOptions {
            runs: 25,
            seed: 2020,
            workload: WorkloadConfig::paper_default(),
            npu: NpuConfig::paper_default(),
        }
    }

    /// A reduced setup for quick runs and unit tests.
    pub fn quick() -> Self {
        SuiteOptions {
            runs: 3,
            ..SuiteOptions::paper()
        }
    }

    /// Overrides the run count.
    pub fn with_runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "at least one run is required");
        self.runs = runs;
        self
    }
}

impl Default for SuiteOptions {
    fn default() -> Self {
        SuiteOptions::quick()
    }
}

/// Aggregated results of one scheduler configuration across all runs.
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// The configuration's paper-style label (e.g. "Dynamic-PREMA").
    pub label: String,
    /// Average raw metrics across runs.
    pub metrics: MultiTaskMetrics,
    /// ANTT improvement over NP-FCFS (higher is better).
    pub antt_improvement: f64,
    /// STP improvement over NP-FCFS (higher is better).
    pub stp_improvement: f64,
    /// Fairness improvement over NP-FCFS (higher is better).
    pub fairness_improvement: f64,
    /// SLA violation curve pooled over all tasks of all runs (Figure 13).
    pub sla: SlaCurve,
    /// 95th-percentile turnaround of high-priority tasks in milliseconds
    /// (Figure 14's metric, pooled across runs).
    pub high_priority_p95_ms: Option<f64>,
    /// Mean number of preemptions per run.
    pub mean_preemptions: f64,
}

/// Builds the analytical predictor used by the predictor-driven policies,
/// including the profiled sequence-length regression tables for the seq2seq
/// models (Section V-B).
pub fn build_predictor(npu: &NpuConfig, seed: u64) -> AnalyticalPredictor {
    // Mix the seed so the profiling pass and the workload generator do not
    // share a random stream.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut predictor = AnalyticalPredictor::new(npu.clone());
    for model in RNN_MODELS {
        if model.has_dynamic_output_len() {
            let table = SeqLenCharacterization::profile(model, 30, &mut rng).to_table();
            predictor = predictor.with_seq_table(model, table);
        }
    }
    predictor
}

/// Runs every configuration in `configs` (plus the NP-FCFS baseline) over the
/// same sequence of generated workloads and aggregates the results.
pub fn run_configs(configs: &[SchedulerConfig], opts: &SuiteOptions) -> Vec<ConfigResult> {
    assert!(!configs.is_empty(), "at least one configuration is required");
    assert!(opts.runs > 0, "at least one run is required");
    let predictor = build_predictor(&opts.npu, opts.seed);
    let baseline_cfg = SchedulerConfig::np_fcfs();

    // Per configuration: per-run metrics, pooled outcomes, pooled
    // high-priority latencies, preemption counts.
    let mut per_config_metrics: Vec<Vec<MultiTaskMetrics>> = vec![Vec::new(); configs.len()];
    let mut per_config_outcomes: Vec<Vec<TaskOutcome>> = vec![Vec::new(); configs.len()];
    let mut per_config_hp_ms: Vec<Vec<f64>> = vec![Vec::new(); configs.len()];
    let mut per_config_preemptions: Vec<u64> = vec![0; configs.len()];
    let mut baseline_metrics: Vec<MultiTaskMetrics> = Vec::new();

    let mut rng = StdRng::seed_from_u64(opts.seed);
    for _ in 0..opts.runs {
        let spec = generate_workload(&opts.workload, &mut rng);
        let prepared = prepare_workload(&spec, &opts.npu, Some(&predictor));

        let baseline_outcome =
            NpuSimulator::new(opts.npu.clone(), baseline_cfg.clone()).run(&prepared.tasks);
        baseline_metrics.push(MultiTaskMetrics::from_outcomes(&outcomes_of(
            &baseline_outcome.records,
        )));

        for (i, cfg) in configs.iter().enumerate() {
            let outcome = NpuSimulator::new(opts.npu.clone(), cfg.clone()).run(&prepared.tasks);
            collect(
                &outcome,
                &opts.npu,
                &mut per_config_metrics[i],
                &mut per_config_outcomes[i],
                &mut per_config_hp_ms[i],
                &mut per_config_preemptions[i],
            );
        }
    }

    let baseline_avg = average_metrics(&baseline_metrics);
    configs
        .iter()
        .enumerate()
        .map(|(i, cfg)| {
            let metrics = average_metrics(&per_config_metrics[i]);
            let sla = SlaCurve::sweep(&per_config_outcomes[i], (2..=20).map(|n| n as f64));
            let high_priority_p95_ms = Percentiles::summarize(&per_config_hp_ms[i]).map(|p| p.p95);
            ConfigResult {
                label: cfg.label(),
                antt_improvement: metrics.antt_improvement_over(&baseline_avg),
                stp_improvement: metrics.stp_improvement_over(&baseline_avg),
                fairness_improvement: metrics.fairness_improvement_over(&baseline_avg),
                metrics,
                sla,
                high_priority_p95_ms,
                mean_preemptions: per_config_preemptions[i] as f64 / opts.runs as f64,
            }
        })
        .collect()
}

fn collect(
    outcome: &SimOutcome,
    npu: &NpuConfig,
    metrics: &mut Vec<MultiTaskMetrics>,
    outcomes: &mut Vec<TaskOutcome>,
    hp_ms: &mut Vec<f64>,
    preemptions: &mut u64,
) {
    let run_outcomes = outcomes_of(&outcome.records);
    metrics.push(MultiTaskMetrics::from_outcomes(&run_outcomes));
    outcomes.extend(run_outcomes);
    hp_ms.extend(
        outcome
            .records
            .iter()
            .filter(|r| r.priority == Priority::High)
            .map(|r| npu.cycles_to_millis(r.turnaround())),
    );
    *preemptions += outcome.checkpoint_preemptions + outcome.kill_preemptions;
}

/// Convenience: isolated per-model execution times in milliseconds (batch 1),
/// used as the Figure 14 "Isolated" bars and for sanity checks.
pub fn isolated_latency_ms(model: ModelKind, npu: &NpuConfig) -> f64 {
    use dnn_models::SeqSpec;
    use prema_core::plan::ExecutionPlan;
    let seq = SeqSpec::for_model(model, 20);
    let plan = ExecutionPlan::compile(model, 1, seq, npu);
    npu.cycles_to_millis(plan.total_cycles())
}

#[cfg(test)]
mod tests {
    use super::*;
    use prema_core::config::{PolicyKind, PreemptionMode};

    #[test]
    fn suite_runs_and_reports_improvements() {
        let opts = SuiteOptions {
            runs: 2,
            seed: 7,
            workload: WorkloadConfig {
                task_count: 4,
                ..WorkloadConfig::paper_default()
            },
            npu: NpuConfig::paper_default(),
        };
        let configs = vec![
            SchedulerConfig::np_fcfs(),
            SchedulerConfig::named(PolicyKind::Prema, PreemptionMode::Dynamic),
        ];
        let results = run_configs(&configs, &opts);
        assert_eq!(results.len(), 2);
        // The baseline compared against itself has improvement ~1.
        assert!((results[0].antt_improvement - 1.0).abs() < 1e-9);
        // PREMA should never be worse than NP-FCFS on ANTT.
        assert!(results[1].antt_improvement >= 0.99, "{}", results[1].antt_improvement);
        assert!(!results[1].sla.points().is_empty());
        assert_eq!(results[1].label, "Dynamic-PREMA");
    }

    #[test]
    fn options_presets() {
        assert_eq!(SuiteOptions::paper().runs, 25);
        assert_eq!(SuiteOptions::quick().runs, 3);
        assert_eq!(SuiteOptions::default().runs, 3);
        assert_eq!(SuiteOptions::quick().with_runs(7).runs, 7);
    }

    #[test]
    fn isolated_latencies_are_milliseconds() {
        let npu = NpuConfig::paper_default();
        let vgg = isolated_latency_ms(ModelKind::CnnVggNet, &npu);
        assert!(vgg > 1.0 && vgg < 45.0, "{vgg}");
    }
}
