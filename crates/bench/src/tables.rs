//! Tables I and II: the NPU and scheduler configuration tables.

use npu_sim::NpuConfig;
use prema_core::{Priority, SchedulerConfig};
use prema_metrics::TableBuilder;

/// Formats Table I (the NPU configuration parameters).
pub fn table1(npu: &NpuConfig) -> String {
    TableBuilder::new(vec!["parameter".into(), "value".into()])
        .title("Table I: NPU configuration parameters")
        .row(vec![
            "Systolic-array dimension".into(),
            format!("{} x {}", npu.systolic_width, npu.systolic_height),
        ])
        .row(vec![
            "PE operating frequency".into(),
            format!("{} MHz", npu.frequency_mhz),
        ])
        .row(vec![
            "On-chip SRAM (activations)".into(),
            format!("{} MB", npu.activation_sram_bytes / (1024 * 1024)),
        ])
        .row(vec![
            "On-chip SRAM (weights)".into(),
            format!("{} MB", npu.weight_sram_bytes / (1024 * 1024)),
        ])
        .row(vec![
            "Memory channels".into(),
            npu.memory_channels.to_string(),
        ])
        .row(vec![
            "Memory bandwidth".into(),
            format!("{} GB/sec", npu.memory_bandwidth_gbps),
        ])
        .row(vec![
            "Memory access latency".into(),
            format!("{} cycles", npu.memory_latency_cycles),
        ])
        .build()
}

/// Formats Table II (the PREMA scheduler configuration).
pub fn table2(sched: &SchedulerConfig) -> String {
    TableBuilder::new(vec!["parameter".into(), "value".into()])
        .title("Table II: PREMA scheduler configuration")
        .row(vec![
            "Scheduling period time-quota".into(),
            format!("{} ms", sched.quantum_ms),
        ])
        .row(vec![
            "Tokens per UserDefinedPriority".into(),
            format!(
                "{}/{}/{} (low/medium/high)",
                Priority::Low.token_grant() * sched.token_scale,
                Priority::Medium.token_grant() * sched.token_scale,
                Priority::High.token_grant() * sched.token_scale,
            ),
        ])
        .row(vec!["Scheduling policy".into(), sched.policy.to_string()])
        .row(vec![
            "Preemption mode".into(),
            format!("{:?}", sched.preemption),
        ])
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_reproduce_the_paper_values() {
        let t1 = table1(&NpuConfig::paper_default());
        assert!(t1.contains("128 x 128"));
        assert!(t1.contains("700 MHz"));
        assert!(t1.contains("358 GB/sec"));
        assert!(t1.contains("100 cycles"));

        let t2 = table2(&SchedulerConfig::paper_default());
        assert!(t2.contains("0.25 ms"));
        assert!(t2.contains("1/3/9"));
        assert!(t2.contains("PREMA"));
    }
}
