//! Perfetto trace export for the closed-loop cluster benches.
//!
//! One seeded closed-loop scenario, run twice on identical driving: once
//! untraced and once with a [`JsonTraceSink`] attached. The two
//! [`OnlineOutcome`]s are asserted bit-identical (the flight recorder's
//! observe-never-perturb invariant), the trace's reconciliation counters
//! are checked against the outcome's own tallies, and the caller gets the
//! Chrome/Perfetto `trace_event` JSON to write wherever it likes. The
//! `throughput trace` subcommand runs the combined flavor; the `cluster`,
//! `cluster-faults` and `cluster-migration` subcommands re-run their own
//! flavor when `--trace-out` is given, so every bench bin can hand back a
//! loadable timeline of the mechanism it measures.

use rand::rngs::StdRng;
use rand::SeedableRng;

use npu_sim::NpuConfig;
use prema_cluster::{
    ClusterFaultPlan, JsonTraceSink, MigrationConfig, OnlineClusterConfig, OnlineClusterSimulator,
    OnlineDispatchPolicy, OnlineOutcome, RecoveryConfig, TraceReconciliation,
};
use prema_core::SchedulerConfig;
use prema_workload::arrivals::{generate_open_loop, OpenLoopConfig};
use prema_workload::prepare::prepare_workload;
use prema_workload::FaultProcess;

use crate::cluster::{mean_service_ms, offered_rate_per_ms, SLA_ADMIT_TARGET_P99_MS};
use crate::suite::{build_predictor, run_seed};

/// Options controlling one traced closed-loop scenario.
#[derive(Debug, Clone)]
pub struct TraceScenarioOptions {
    /// Cluster size.
    pub nodes: usize,
    /// Offered load (fraction of cluster capacity).
    pub rho: f64,
    /// RNG seed; the request stream and fault schedule derive from it.
    pub seed: u64,
    /// Length of the generated arrival window, in milliseconds.
    pub duration_ms: f64,
    /// Inject a seeded crash/freeze/degrade schedule (MTBF at
    /// `mtbf_multiplier` times the mean service time).
    pub faults: bool,
    /// MTBF as a multiple of the mean service time, when faults are on.
    pub mtbf_multiplier: f64,
    /// Mean fault-window length, in milliseconds.
    pub downtime_ms: f64,
    /// Fraction of fault windows that freeze instead of crashing.
    pub freeze_fraction: f64,
    /// Fraction of fault windows that degrade (straggle) instead; degraded
    /// windows run at 1/8 speed.
    pub degrade_fraction: f64,
    /// Fault every node, or only the first half (leaving healthy
    /// destinations — the straggler regime migration exists for).
    pub fault_all_nodes: bool,
    /// Enable deadline-triggered checkpoint migration (SLA at 8x the mean
    /// service time).
    pub migration: bool,
    /// Enable work stealing onto idle nodes.
    pub stealing: bool,
    /// Enable SLA-aware admission shedding.
    pub admission: bool,
    /// The per-node scheduler.
    pub scheduler: SchedulerConfig,
    /// The per-node NPU configuration.
    pub npu: NpuConfig,
}

impl TraceScenarioOptions {
    /// The combined flavor `throughput trace` runs: crashes, freezes,
    /// degrades, checkpoint recovery, migration, stealing and admission all
    /// at once on a short window — every event category fires.
    pub fn combined() -> Self {
        TraceScenarioOptions {
            nodes: 4,
            rho: 0.75,
            seed: 2020,
            duration_ms: 120.0,
            faults: true,
            mtbf_multiplier: 2.5,
            downtime_ms: 8.0,
            freeze_fraction: 0.15,
            degrade_fraction: 0.35,
            fault_all_nodes: true,
            migration: true,
            stealing: true,
            admission: false,
            scheduler: SchedulerConfig::paper_default(),
            npu: NpuConfig::paper_default(),
        }
    }

    /// The fault-free serving flavor behind `cluster --trace-out`:
    /// predictive dispatch with stealing and admission.
    pub fn serving() -> Self {
        TraceScenarioOptions {
            faults: false,
            migration: false,
            admission: true,
            ..TraceScenarioOptions::combined()
        }
    }

    /// The crash/freeze flavor behind `cluster-faults --trace-out`.
    pub fn faults() -> Self {
        TraceScenarioOptions {
            degrade_fraction: 0.0,
            migration: false,
            stealing: false,
            ..TraceScenarioOptions::combined()
        }
    }

    /// The straggler flavor behind `cluster-migration --trace-out`:
    /// degrade-only windows with migration on.
    pub fn migration() -> Self {
        TraceScenarioOptions {
            freeze_fraction: 0.0,
            degrade_fraction: 1.0,
            mtbf_multiplier: 2.0,
            downtime_ms: 25.0,
            fault_all_nodes: false,
            stealing: false,
            ..TraceScenarioOptions::combined()
        }
    }
}

/// What one traced scenario produced: the outcome, the exporter's
/// reconciliation counters, and the serialized Perfetto JSON.
#[derive(Debug)]
pub struct TraceArtifacts {
    /// The (trace-identical) closed-loop outcome.
    pub outcome: OnlineOutcome,
    /// The exporter's counters, for reconciling against the outcome.
    pub reconciliation: TraceReconciliation,
    /// The Chrome `trace_event` JSON.
    pub json: String,
    /// Requests in the generated stream.
    pub requests: usize,
    /// Cluster size the scenario ran on.
    pub nodes: usize,
}

/// Runs the scenario untraced and traced on identical driving and returns
/// the artifacts.
///
/// # Panics
///
/// Panics if attaching the trace sink perturbs the outcome — the invariant
/// the whole telemetry layer is built on.
pub fn run_trace_scenario(opts: &TraceScenarioOptions) -> TraceArtifacts {
    let predictor = build_predictor(&opts.npu, opts.seed);
    let template = OpenLoopConfig::poisson(1.0, opts.duration_ms);
    let service_ms = mean_service_ms(&template.models, &template.batch_sizes, &opts.npu);
    let rate = offered_rate_per_ms(opts.rho, opts.nodes, service_ms);
    let mut rng = StdRng::seed_from_u64(run_seed(opts.seed, 0));
    let spec = generate_open_loop(&OpenLoopConfig::poisson(rate, opts.duration_ms), &mut rng);
    let prepared = prepare_workload(&spec, &opts.npu, Some(&predictor));

    let mut config = OnlineClusterConfig::new(
        opts.nodes,
        opts.scheduler.clone(),
        OnlineDispatchPolicy::Predictive,
    );
    if opts.faults {
        let faulted = if opts.fault_all_nodes {
            opts.nodes
        } else {
            (opts.nodes / 2).max(1).min(opts.nodes.saturating_sub(1))
        };
        let schedule = FaultProcess::crashes(
            faulted,
            opts.mtbf_multiplier * service_ms,
            opts.downtime_ms,
            opts.duration_ms,
        )
        .with_freeze_fraction(opts.freeze_fraction)
        .with_degradation(opts.degrade_fraction, 1, 8)
        .generate(&mut rng);
        config = config.with_faults(
            ClusterFaultPlan::new(schedule).with_recovery(RecoveryConfig::checkpointed()),
        );
    }
    if opts.migration {
        config = config.with_migration(MigrationConfig::new(8.0 * service_ms));
    }
    if opts.stealing {
        config = config.with_work_stealing();
    }
    if opts.admission {
        config = config.with_admission(SLA_ADMIT_TARGET_P99_MS);
    }

    let online = OnlineClusterSimulator::new(config);
    let untraced = online.run(&prepared.tasks);
    let (outcome, sink) =
        online.run_traced(&prepared.tasks, JsonTraceSink::new(opts.nodes, &opts.npu));
    assert_eq!(
        outcome, untraced,
        "attaching the trace sink perturbed the closed-loop outcome"
    );
    TraceArtifacts {
        reconciliation: sink.reconciliation(),
        json: sink.to_json(),
        requests: prepared.tasks.len(),
        nodes: opts.nodes,
        outcome,
    }
}

/// Checks the exporter's counters against the outcome's own tallies: every
/// steal / migration / recovery / shed instant must match the outcome
/// one-for-one, every served task must own at least one execution slice,
/// every arrival must have produced a dispatch decision, and every injected
/// fault window must have produced a fault instant.
///
/// # Errors
///
/// Returns a description of the first mismatch.
pub fn verify_reconciliation(artifacts: &TraceArtifacts) -> Result<(), String> {
    let rec = &artifacts.reconciliation;
    let outcome = &artifacts.outcome;
    if rec.steals != outcome.steals {
        return Err(format!(
            "trace recorded {} steals, outcome {}",
            rec.steals, outcome.steals
        ));
    }
    if rec.migrations != outcome.migrations || rec.migrations != outcome.migration_log.len() as u64
    {
        return Err(format!(
            "trace recorded {} migrations, outcome {} ({} logged)",
            rec.migrations,
            outcome.migrations,
            outcome.migration_log.len()
        ));
    }
    if rec.recoveries != outcome.recoveries || rec.recoveries != outcome.recovery_log.len() as u64 {
        return Err(format!(
            "trace recorded {} recoveries, outcome {} ({} logged)",
            rec.recoveries,
            outcome.recoveries,
            outcome.recovery_log.len()
        ));
    }
    if rec.sheds != outcome.shed.len() as u64 {
        return Err(format!(
            "trace recorded {} sheds, outcome shed {}",
            rec.sheds,
            outcome.shed.len()
        ));
    }
    if rec.slice_tasks < outcome.served() {
        return Err(format!(
            "{} served tasks but only {} own an execution slice",
            outcome.served(),
            rec.slice_tasks
        ));
    }
    // Every arrival picks a node, and so does every recovery re-dispatch.
    let expected_decisions = artifacts.requests as u64 + outcome.recoveries;
    if rec.dispatch_decisions != expected_decisions {
        return Err(format!(
            "{} arrivals + {} recoveries but {} dispatch decisions",
            artifacts.requests, outcome.recoveries, rec.dispatch_decisions
        ));
    }
    let fault_windows = outcome.crashes + outcome.freezes + outcome.degrades;
    if rec.faults < fault_windows {
        return Err(format!(
            "{fault_windows} fault windows began but only {} fault instants traced",
            rec.faults
        ));
    }
    Ok(())
}

/// A minimal well-formedness scan of the emitted JSON — balanced braces and
/// brackets outside string literals, escapes honoured — so the smoke gate
/// can assert "Perfetto will parse this" without a JSON dependency.
pub fn json_is_well_formed(text: &str) -> bool {
    let mut depth: Vec<u8> = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for byte in text.bytes() {
        if in_string {
            if escaped {
                escaped = false;
            } else if byte == b'\\' {
                escaped = true;
            } else if byte == b'"' {
                in_string = false;
            }
            continue;
        }
        match byte {
            b'"' => in_string = true,
            b'{' => depth.push(b'}'),
            b'[' => depth.push(b']'),
            b'}' | b']' if depth.pop() != Some(byte) => return false,
            b'}' | b']' => {}
            _ => {}
        }
    }
    !in_string && depth.is_empty() && !text.trim().is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mut opts: TraceScenarioOptions) -> TraceScenarioOptions {
        opts.nodes = 2;
        opts.duration_ms = 100.0;
        opts
    }

    #[test]
    fn combined_scenario_reconciles_and_emits_well_formed_json() {
        let artifacts = run_trace_scenario(&quick(TraceScenarioOptions::combined()));
        verify_reconciliation(&artifacts).expect("reconciliation");
        assert!(json_is_well_formed(&artifacts.json));
        assert!(artifacts.outcome.served() > 0);
        assert!(artifacts.reconciliation.slices >= artifacts.outcome.served() as u64);
        assert!(artifacts.reconciliation.faults > 0, "faults must fire");
        assert!(artifacts.json.contains(r#""ph":"X""#), "slices expected");
        assert!(artifacts.json.contains(r#""ph":"C""#), "counters expected");
    }

    #[test]
    fn migration_scenario_actually_migrates() {
        let artifacts = run_trace_scenario(&quick(TraceScenarioOptions::migration()));
        verify_reconciliation(&artifacts).expect("reconciliation");
        assert!(artifacts.outcome.migrations > 0, "stragglers must evacuate");
        assert!(artifacts.json.contains(r#""name":"migrate-out""#));
    }

    #[test]
    fn json_scanner_accepts_nested_and_rejects_unbalanced() {
        assert!(json_is_well_formed(r#"{"a":[1,{"b":"}\""}]}"#));
        assert!(!json_is_well_formed(r#"{"a":[1}"#));
        assert!(!json_is_well_formed(r#"{"a":"unterminated}"#));
        assert!(!json_is_well_formed("   "));
    }
}
