//! Experiment harness for the PREMA reproduction.
//!
//! Every table and figure of the paper's evaluation has a module here that
//! regenerates it: a workload generator, the scheduler configurations under
//! comparison, and a reporting function that prints the same rows/series the
//! paper plots. The `experiments` binary dispatches to these modules; the
//! Criterion benches under `benches/` wrap the same entry points so that
//! `cargo bench` exercises every experiment.
//!
//! | Module | Paper content |
//! |---|---|
//! | [`tables`] | Table I (NPU config) and Table II (scheduler config) |
//! | [`fig01`] | Figure 1 — co-location throughput vs latency |
//! | [`fig05_06`] | Figures 5 & 6 — preemption mechanism latency / wait / STP / NTT |
//! | [`fig07`] | Figure 7 — per-layer activation density |
//! | [`fig09`] | Figure 9 — sequence-length characterization |
//! | [`fig10`] | Figure 10 — MACs vs execution time |
//! | [`suite`], [`fig11_15`] | Figures 11, 12, 13, 15 — policy comparisons |
//! | [`fig14`] | Figure 14 — high-priority tail latency |
//! | [`prediction`] | Sections VI-A / VI-D — prediction accuracy vs oracle |
//! | [`overhead`] | Section VI-F — context-table SRAM overhead |
//! | [`sensitivity`] | Section VI-E — quantum / token / batch sensitivity |
//! | [`cluster`] | Beyond the paper: multi-NPU cluster serving load sweep |
//! | [`scale`] | Beyond the paper: closed-loop co-simulation scaling sweep |
//! | [`faults`] | Beyond the paper: checkpoint recovery vs restart-from-zero under node faults |
//! | [`migration`] | Beyond the paper: deadline-triggered checkpoint migration vs riding out stragglers |
//! | [`partition`] | Beyond the paper: redirect-with-backoff custody vs abandon-on-failure under link faults |

pub mod cluster;
pub mod faults;
pub mod fig01;
pub mod fig05_06;
pub mod fig07;
pub mod fig09;
pub mod fig10;
pub mod fig11_15;
pub mod fig14;
pub mod migration;
pub mod overhead;
pub mod partition;
pub mod prediction;
pub mod scale;
pub mod sensitivity;
pub mod suite;
pub mod tables;
pub mod trace;

pub use cluster::{run_cluster_sweep, ClusterCell, ClusterSweepOptions};
pub use suite::{ConfigResult, SuiteOptions};
