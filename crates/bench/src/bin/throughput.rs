//! Suite-throughput benchmark: measures the end-to-end wall-clock of the
//! paper's policy-comparison sweep under the optimized path (plan cache +
//! rayon-parallel grid) against the serial, uncached reference, verifies the
//! two produce bit-identical outcomes, and emits a machine-readable
//! `BENCH_sim_suite.json` report establishing the performance trajectory.
//!
//! ```text
//! throughput [--runs N] [--seed S] [--out PATH] [--check-baseline PATH]
//! throughput cluster [--nodes N] [--duration-ms D] [--seed S] [--out PATH]
//!                    [--check-baseline PATH]
//! ```
//!
//! Defaults reproduce the paper's setup: 25 runs of 8-task workloads under
//! all six non-preemptive policies plus the eight static/dynamic preemptive
//! configurations of Figure 12 (15 configurations with the NP-FCFS baseline).
//!
//! The `cluster` subcommand instead runs the multi-NPU serving load sweep
//! (offered load x dispatch policy on a 4-node cluster — the five open-loop
//! front-end policies plus the five closed-loop online variants, see
//! `prema_bench::cluster`) and emits a combined `BENCH_cluster.json`.
//!
//! With `--check-baseline`, the committed report at PATH is read and the run
//! fails (non-zero exit) if the freshly measured `events_per_sec` regressed
//! more than 20 % below the baseline's — the CI smoke gates on exactly this,
//! alongside the always-on bit-identity check (outcome equality for the
//! suite, the deterministic `sweep_hash` digest for the cluster).

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use prema_bench::cluster::{cell_of, run_cluster_sweep, sweep_hash, ClusterSweepOptions};
use prema_bench::faults::{fault_sweep_hash, run_fault_sweep, FaultSweepOptions};
use prema_bench::fig11_15::{fig11_configs, fig12_configs};
use prema_bench::migration::{migration_sweep_hash, run_migration_sweep, MigrationSweepOptions};
use prema_bench::partition::{
    partition_sweep_hash, partition_wins, run_partition_sweep, PartitionSweepOptions,
};
use prema_bench::scale::{
    run_scale_sweep, scale_aggregates, scale_extended_sweep_hash, scale_sweep_hash,
    ScaleSweepOptions,
};
use prema_bench::suite::{run_grid_instrumented, run_grid_reference, SuiteOptions};
use prema_bench::trace::{
    json_is_well_formed, run_trace_scenario, verify_reconciliation, TraceScenarioOptions,
};
use prema_core::plan::plan_cache;
use prema_core::{OutcomeSummary, SchedulerConfig, SimOutcome};

/// Largest tolerated drop of measured `events_per_sec` below the baseline
/// before `--check-baseline` fails the run.
const MAX_REGRESSION: f64 = 0.20;

struct Options {
    runs: usize,
    seed: u64,
    out: String,
    check_baseline: Option<String>,
}

const USAGE: &str = "usage: throughput [--runs N] [--seed S] [--out PATH] [--check-baseline PATH]\n       throughput cluster [--nodes N] [--duration-ms D] [--seed S] [--out PATH] [--check-baseline PATH] [--trace-out PATH]\n       throughput cluster-scale [--nodes A,B,C] [--heap-only] [--rho R] [--duration-ms D] [--seed S] [--reps N] [--out PATH] [--check-baseline PATH]\n       throughput cluster-faults [--nodes N] [--rho R] [--duration-ms D] [--seed S] [--reps N] [--out PATH] [--check-baseline PATH] [--trace-out PATH]\n       throughput cluster-migration [--nodes N] [--rho R] [--duration-ms D] [--seed S] [--reps N] [--out PATH] [--check-baseline PATH] [--trace-out PATH]\n       throughput cluster-partition [--nodes N] [--rho R] [--duration-ms D] [--seed S] [--reps N] [--out PATH] [--check-baseline PATH]\n       throughput trace [--nodes N] [--rho R] [--duration-ms D] [--seed S] [--out PATH]";

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        runs: SuiteOptions::paper().runs,
        seed: SuiteOptions::paper().seed,
        out: "BENCH_sim_suite.json".to_string(),
        check_baseline: None,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                options.runs = args
                    .next()
                    .ok_or("--runs requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --runs value: {e}"))?;
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed value: {e}"))?;
            }
            "--out" => {
                options.out = args.next().ok_or("--out requires a value")?;
            }
            "--check-baseline" => {
                options.check_baseline =
                    Some(args.next().ok_or("--check-baseline requires a value")?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if options.runs == 0 {
        return Err("--runs must be at least 1".into());
    }
    Ok(options)
}

fn total_events(outcomes: &[SimOutcome]) -> u64 {
    outcomes.iter().map(|o| o.scheduler_invocations).sum()
}

/// Extracts the first `"key": <number>` after the `"section"` key in a
/// previously emitted report. The workspace is hermetic (no serde_json), so
/// this parses the report's own fixed layout: find the section key, then
/// the first numeric field of that name after it. Both names are passed
/// unquoted and matched as quoted JSON keys.
fn baseline_number(report: &str, section: &str, key: &str) -> Option<f64> {
    let section_needle = format!("\"{section}\"");
    let section_start = report.find(&section_needle)?;
    let rest = &report[section_start..];
    let needle = format!("\"{key}\"");
    let field = rest.find(&needle)?;
    let after = &rest[field + needle.len()..];
    let number: String = after
        .chars()
        .skip_while(|c| *c == ':' || c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == 'E')
        .collect();
    number.parse().ok()
}

/// Extracts the first `"key": "<string>"` value from a previously emitted
/// report.
fn baseline_string(report: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let field = report.find(&needle)?;
    let after = &report[field + needle.len()..];
    let open = after.find('"')?;
    let rest = &after[open + 1..];
    let close = rest.find('"')?;
    Some(rest[..close].to_string())
}

/// Largest tolerated drop for the cluster-scale heap figure. The event-heap
/// loop finishes the 64-node cells in single-digit milliseconds, so its
/// relative wall-clock noise on a shared host is inherently higher than the
/// longer suite/cluster measurements; this gate exists to catch the heap
/// loop degenerating back toward the stepping reference (a 5-8x change),
/// so a wider band keeps it meaningful without flaking.
const SCALE_MAX_REGRESSION: f64 = 0.40;

/// Compares a measured events/sec figure against a baseline's, failing on a
/// more-than-`tolerance` drop.
fn check_events_per_sec_with(measured: f64, baseline: f64, what: &str, tolerance: f64) -> bool {
    let floor = baseline * (1.0 - tolerance);
    if measured < floor {
        eprintln!(
            "[throughput] FAIL: {what} events/sec regressed more than {:.0}%: \
             measured {measured:.0} < floor {floor:.0} (baseline {baseline:.0})",
            tolerance * 100.0,
        );
        false
    } else {
        eprintln!(
            "[throughput] baseline check passed: {measured:.0} {what} events/sec >= {floor:.0} \
             (baseline {baseline:.0}, tolerance {:.0}%)",
            tolerance * 100.0
        );
        true
    }
}

/// Compares a measured events/sec figure against a baseline's, failing on a
/// more-than-[`MAX_REGRESSION`] drop.
fn check_events_per_sec(measured: f64, baseline: f64, what: &str) -> bool {
    check_events_per_sec_with(measured, baseline, what, MAX_REGRESSION)
}

/// Emits a GitHub Actions `::error` workflow command so a failed baseline
/// gate surfaces as an annotation on the run, not just a log line. Message
/// newlines are escaped per the workflow-command grammar. No-op outside
/// Actions (detected via `GITHUB_ACTIONS`).
fn gha_error(title: &str, message: &str) {
    if env::var_os("GITHUB_ACTIONS").is_none() {
        return;
    }
    let escaped = message
        .replace('%', "%25")
        .replace('\r', "%0D")
        .replace('\n', "%0A");
    println!("::error title={title}::{escaped}");
}

/// Appends markdown to the job's step summary when `GITHUB_STEP_SUMMARY`
/// points at the collector file; no-op otherwise.
fn gha_step_summary(markdown: &str) {
    use std::io::Write;
    let Some(path) = env::var_os("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if let Ok(mut file) = std::fs::OpenOptions::new()
        .append(true)
        .create(true)
        .open(path)
    {
        let _ = writeln!(file, "{markdown}");
    }
}

/// Reports a `--check-baseline` failure to GitHub Actions: one `::error`
/// annotation plus an expected-vs-actual step-summary table covering every
/// gate the run tripped. The detailed `eprintln` diagnostics stay the
/// primary record; this makes them legible from the Actions UI.
fn report_baseline_failure(bench: &str, rows: &[(String, String, String)]) {
    let mut detail = String::new();
    let mut table = format!(
        "### ❌ `{bench}` baseline check failed\n\n| metric | expected | actual |\n| --- | --- | --- |\n"
    );
    for (metric, expected, actual) in rows {
        detail.push_str(&format!("{metric}: expected {expected}, actual {actual}\n"));
        table.push_str(&format!("| {metric} | {expected} | {actual} |\n"));
    }
    gha_error(&format!("{bench} baseline check failed"), detail.trim_end());
    gha_step_summary(&table);
}

/// Runs one traced closed-loop scenario, checks the trace's counters
/// against the outcome and its JSON for well-formedness, and writes the
/// Perfetto file. Shared by `throughput trace` and the sweeps' `--trace-out`.
fn export_trace(opts: &TraceScenarioOptions, path: &str) -> bool {
    let artifacts = run_trace_scenario(opts);
    if let Err(mismatch) = verify_reconciliation(&artifacts) {
        eprintln!("[throughput] FAIL: trace does not reconcile with the outcome: {mismatch}");
        return false;
    }
    if !json_is_well_formed(&artifacts.json) {
        eprintln!("[throughput] FAIL: emitted trace JSON is not well-formed");
        return false;
    }
    if let Err(error) = std::fs::write(path, &artifacts.json) {
        eprintln!("[throughput] could not write {path}: {error}");
        return false;
    }
    let rec = &artifacts.reconciliation;
    eprintln!(
        "[throughput] trace written to {path}: {} nodes, {}/{} served, {} slices \
         ({} tasks), {} dispatch decisions, {} steals, {} migrations, {} recoveries, \
         {} faults, {} sheds — outcome reconciled, load at https://ui.perfetto.dev",
        artifacts.nodes,
        artifacts.outcome.served(),
        artifacts.requests,
        rec.slices,
        rec.slice_tasks,
        rec.dispatch_decisions,
        rec.steals,
        rec.migrations,
        rec.recoveries,
        rec.faults,
        rec.sheds,
    );
    true
}

struct TraceOptions {
    nodes: usize,
    rho: f64,
    duration_ms: f64,
    seed: u64,
    out: String,
}

fn parse_trace_args(args: impl Iterator<Item = String>) -> Result<TraceOptions, String> {
    let defaults = TraceScenarioOptions::combined();
    let mut options = TraceOptions {
        nodes: defaults.nodes,
        rho: defaults.rho,
        duration_ms: defaults.duration_ms,
        seed: defaults.seed,
        out: "TRACE_cluster.json".to_string(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                options.nodes = args
                    .next()
                    .ok_or("--nodes requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --nodes value: {e}"))?;
            }
            "--rho" => {
                options.rho = args
                    .next()
                    .ok_or("--rho requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --rho value: {e}"))?;
            }
            "--duration-ms" => {
                options.duration_ms = args
                    .next()
                    .ok_or("--duration-ms requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --duration-ms value: {e}"))?;
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed value: {e}"))?;
            }
            "--out" => {
                options.out = args.next().ok_or("--out requires a value")?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if options.nodes < 2 {
        return Err("--nodes must be at least 2".into());
    }
    if !options.rho.is_finite() || options.rho <= 0.0 {
        return Err("--rho must be positive".into());
    }
    if !options.duration_ms.is_finite() || options.duration_ms <= 0.0 {
        return Err("--duration-ms must be positive".into());
    }
    Ok(options)
}

fn trace_main(options: TraceOptions) -> ExitCode {
    let opts = TraceScenarioOptions {
        nodes: options.nodes,
        rho: options.rho,
        duration_ms: options.duration_ms,
        seed: options.seed,
        ..TraceScenarioOptions::combined()
    };
    eprintln!(
        "[throughput] traced combined scenario: {} nodes at rho {:.2}, {} ms window, \
         faults + migration + stealing on",
        opts.nodes, opts.rho, opts.duration_ms
    );
    if export_trace(&opts, &options.out) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

struct ClusterOptions {
    nodes: usize,
    duration_ms: f64,
    seed: u64,
    out: String,
    check_baseline: Option<String>,
    trace_out: Option<String>,
}

fn parse_cluster_args(args: impl Iterator<Item = String>) -> Result<ClusterOptions, String> {
    let defaults = ClusterSweepOptions::baseline();
    let mut options = ClusterOptions {
        nodes: defaults.nodes,
        duration_ms: defaults.duration_ms,
        seed: defaults.seed,
        out: "BENCH_cluster.json".to_string(),
        check_baseline: None,
        trace_out: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                options.nodes = args
                    .next()
                    .ok_or("--nodes requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --nodes value: {e}"))?;
            }
            "--duration-ms" => {
                options.duration_ms = args
                    .next()
                    .ok_or("--duration-ms requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --duration-ms value: {e}"))?;
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed value: {e}"))?;
            }
            "--out" => {
                options.out = args.next().ok_or("--out requires a value")?;
            }
            "--trace-out" => {
                options.trace_out = Some(args.next().ok_or("--trace-out requires a value")?);
            }
            "--check-baseline" => {
                options.check_baseline =
                    Some(args.next().ok_or("--check-baseline requires a value")?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if options.nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    if !options.duration_ms.is_finite() || options.duration_ms <= 0.0 {
        return Err("--duration-ms must be positive".into());
    }
    Ok(options)
}

/// Per-load-level measurement aggregates, printed whenever a baseline check
/// fails so CI logs localize *where* the sweep diverged or slowed down.
fn per_level_events_per_sec(cells: &[prema_bench::cluster::ClusterCell]) -> Vec<(f64, u64, f64)> {
    let mut levels: Vec<(f64, u64, f64)> = Vec::new();
    for cell in cells {
        match levels.iter_mut().find(|(load, _, _)| *load == cell.load) {
            Some((_, events, wall)) => {
                *events += cell.events;
                *wall += cell.wall_s;
            }
            None => levels.push((cell.load, cell.events, cell.wall_s)),
        }
    }
    levels
}

fn print_per_level_breakdown(cells: &[prema_bench::cluster::ClusterCell]) {
    eprintln!("[throughput] per-level breakdown (load: events, events/sec):");
    for (load, events, wall) in per_level_events_per_sec(cells) {
        eprintln!(
            "[throughput]   load {load:.2}: {events} events, {:.0} events/sec",
            events as f64 / wall.max(f64::EPSILON)
        );
    }
}

fn cluster_main(options: ClusterOptions) -> ExitCode {
    let opts = ClusterSweepOptions {
        nodes: options.nodes,
        seed: options.seed,
        duration_ms: options.duration_ms,
        ..ClusterSweepOptions::baseline()
    };
    eprintln!(
        "[throughput] cluster sweep: {} nodes x {} loads x ({} open + {} closed) policies, {} ms windows",
        opts.nodes,
        opts.loads.len(),
        opts.policies.len(),
        opts.closed.len(),
        opts.duration_ms
    );

    let start = Instant::now();
    let cells = run_cluster_sweep(&opts);
    let wall_s = start.elapsed().as_secs_f64();
    let events: u64 = cells.iter().map(|c| c.events).sum();
    // One request stream per load level, replayed by every policy — count
    // each stream once by summing over the first policy's cells.
    let first_policy = cells.first().map(|c| c.policy).unwrap_or_default();
    let unique_requests: usize = cells
        .iter()
        .filter(|cell| cell.policy == first_policy)
        .map(|cell| cell.requests)
        .sum();
    let events_per_sec = events as f64 / wall_s.max(f64::EPSILON);
    let digest = sweep_hash(&cells);

    // The acceptance comparisons the sweep exists for, at the highest
    // offered load: open-loop predictive vs the no-information random
    // baseline on queueing delay, and closed-loop reactive dispatch vs
    // open-loop predictive on p99 turnaround.
    let top_load = opts.loads.iter().cloned().fold(f64::MIN, f64::max);
    let queue_ms = |policy: &str| -> Option<f64> {
        cell_of(&cells, top_load, policy).map(|c| c.metrics.mean_queueing_delay_ms)
    };
    let p99_ms = |policy: &str| -> Option<f64> {
        cell_of(&cells, top_load, policy).map(|c| c.metrics.p99_ms)
    };
    let predictive_queue = queue_ms("predictive");
    let random_queue = queue_ms("random");
    if let (Some(predictive), Some(random)) = (predictive_queue, random_queue) {
        eprintln!(
            "[throughput] load {top_load:.2}: mean queueing delay predictive {predictive:.3} ms \
             vs random {random:.3} ms"
        );
    }
    let open_p99 = p99_ms("predictive");
    let reactive_p99 = p99_ms("work-steal").or_else(|| p99_ms("predictive-live"));
    if let (Some(open), Some(reactive)) = (open_p99, reactive_p99) {
        eprintln!(
            "[throughput] load {top_load:.2}: p99 turnaround closed-loop reactive {reactive:.3} ms \
             vs open-loop predictive {open:.3} ms"
        );
    }

    let mut cell_rows = String::new();
    for (i, cell) in cells.iter().enumerate() {
        let sla4 = cell.metrics.sla.rate_at(4.0).unwrap_or(0.0);
        cell_rows.push_str(&format!(
            "    {{ \"load\": {:.2}, \"mode\": \"{}\", \"policy\": \"{}\", \"requests\": {}, \
             \"served\": {}, \"shed\": {}, \"steals\": {}, \"events\": {}, \
             \"antt\": {:.4}, \"stp\": {:.4}, \"mean_queue_ms\": {:.4}, \"mean_service_ms\": {:.4}, \
             \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, \"sla_violation_at_4x\": {:.4}, \
             \"mean_utilization\": {:.4}, \"makespan_ms\": {:.4}, \"hash\": \"{:016x}\" }}{}\n",
            cell.load,
            cell.mode.label(),
            cell.policy,
            cell.requests,
            cell.served,
            cell.shed,
            cell.steals,
            cell.events,
            cell.metrics.antt,
            cell.metrics.stp,
            cell.metrics.mean_queueing_delay_ms,
            cell.metrics.mean_service_ms,
            cell.metrics.p50_ms,
            cell.metrics.p95_ms,
            cell.metrics.p99_ms,
            sla4,
            cell.metrics.mean_utilization(),
            cell.metrics.makespan_ms,
            cell.hash,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    let load_levels = opts
        .loads
        .iter()
        .map(|load| format!("{load:.2}"))
        .collect::<Vec<_>>()
        .join(", ");
    let policy_labels = opts
        .policies
        .iter()
        .map(|policy| format!("\"{}\"", policy.label()))
        .chain(opts.closed.iter().map(|variant| format!("\"{variant}\"")))
        .collect::<Vec<_>>()
        .join(", ");
    let report = format!(
        "{{\n  \"bench\": \"cluster_serving_sweep\",\n  \"nodes\": {},\n  \"seed\": {},\n  \"duration_ms\": {:.1},\n  \"load_levels\": [{}],\n  \"policies\": [{}],\n  \"unique_requests\": {},\n  \"cluster_events\": {},\n  \"wall_s\": {:.4},\n  \"events_per_sec\": {:.0},\n  \"top_load_queue_ms\": {{ \"load\": {:.2}, \"predictive\": {:.4}, \"random\": {:.4} }},\n  \"top_load_p99_ms\": {{ \"load\": {:.2}, \"open_predictive\": {:.4}, \"closed_reactive\": {:.4} }},\n  \"sweep_hash\": \"{:016x}\",\n  \"cells\": [\n{}  ]\n}}\n",
        opts.nodes,
        opts.seed,
        opts.duration_ms,
        load_levels,
        policy_labels,
        unique_requests,
        events,
        wall_s,
        events_per_sec,
        top_load,
        predictive_queue.unwrap_or(0.0),
        random_queue.unwrap_or(0.0),
        top_load,
        open_p99.unwrap_or(0.0),
        reactive_p99.unwrap_or(0.0),
        digest,
        cell_rows,
    );
    print!("{report}");
    if let Err(error) = std::fs::write(&options.out, &report) {
        eprintln!("[throughput] could not write {}: {error}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("[throughput] report written to {}", options.out);

    if let Some(path) = &options.check_baseline {
        let baseline = match std::fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(error) => {
                eprintln!("[throughput] FAIL: could not read baseline {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        let Some(baseline_hash) = baseline_string(&baseline, "sweep_hash") else {
            eprintln!("[throughput] FAIL: no sweep_hash found in baseline {path}");
            return ExitCode::FAILURE;
        };
        let measured_hash = format!("{digest:016x}");
        if baseline_hash != measured_hash {
            eprintln!(
                "[throughput] FAIL: cluster outcomes diverged from the baseline:\n\
                 [throughput]   expected sweep_hash {baseline_hash}\n\
                 [throughput]   actual   sweep_hash {measured_hash}\n\
                 [throughput] The sweep is deterministic per seed, so this is a \
                 behavioural change: re-commit the baseline only if it is intentional."
            );
            report_baseline_failure(
                "cluster",
                &[("sweep_hash".into(), baseline_hash, measured_hash)],
            );
            print_per_level_breakdown(&cells);
            return ExitCode::FAILURE;
        }
        eprintln!("[throughput] baseline check passed: sweep_hash {measured_hash} matches");
        let Some(baseline_eps) = baseline_number(&baseline, "cluster_events", "events_per_sec")
        else {
            eprintln!("[throughput] FAIL: no events_per_sec found in baseline {path}");
            return ExitCode::FAILURE;
        };
        if !check_events_per_sec(events_per_sec, baseline_eps, "cluster") {
            report_baseline_failure(
                "cluster",
                &[(
                    "events_per_sec".into(),
                    format!(
                        ">= {:.0} (baseline {baseline_eps:.0}, -{:.0}% floor)",
                        baseline_eps * (1.0 - MAX_REGRESSION),
                        MAX_REGRESSION * 100.0
                    ),
                    format!("{events_per_sec:.0}"),
                )],
            );
            print_per_level_breakdown(&cells);
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &options.trace_out {
        let trace_opts = TraceScenarioOptions {
            nodes: options.nodes,
            seed: options.seed,
            ..TraceScenarioOptions::serving()
        };
        if !export_trace(&trace_opts, path) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

struct ScaleOptions {
    nodes: Option<Vec<usize>>,
    heap_only: bool,
    rho: f64,
    duration_ms: f64,
    seed: u64,
    reps: usize,
    out: String,
    check_baseline: Option<String>,
}

fn parse_scale_args(args: impl Iterator<Item = String>) -> Result<ScaleOptions, String> {
    let defaults = ScaleSweepOptions::baseline();
    let mut options = ScaleOptions {
        nodes: None,
        heap_only: false,
        rho: defaults.rho,
        duration_ms: defaults.duration_ms,
        seed: defaults.seed,
        reps: defaults.repetitions,
        out: "BENCH_cluster_scale.json".to_string(),
        check_baseline: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                let list = args.next().ok_or("--nodes requires a value")?;
                let counts: Result<Vec<usize>, _> =
                    list.split(',').map(|n| n.trim().parse()).collect();
                let counts = counts.map_err(|e| format!("invalid --nodes value {list:?}: {e}"))?;
                if counts.is_empty() || counts.contains(&0) {
                    return Err("--nodes needs a comma-separated list of positive counts".into());
                }
                options.nodes = Some(counts);
            }
            "--heap-only" => {
                options.heap_only = true;
            }
            "--rho" => {
                options.rho = args
                    .next()
                    .ok_or("--rho requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --rho value: {e}"))?;
            }
            "--duration-ms" => {
                options.duration_ms = args
                    .next()
                    .ok_or("--duration-ms requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --duration-ms value: {e}"))?;
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed value: {e}"))?;
            }
            "--reps" => {
                options.reps = args
                    .next()
                    .ok_or("--reps requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --reps value: {e}"))?;
            }
            "--out" => {
                options.out = args.next().ok_or("--out requires a value")?;
            }
            "--check-baseline" => {
                options.check_baseline =
                    Some(args.next().ok_or("--check-baseline requires a value")?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if !options.rho.is_finite() || options.rho <= 0.0 {
        return Err("--rho must be positive".into());
    }
    if !options.duration_ms.is_finite() || options.duration_ms <= 0.0 {
        return Err("--duration-ms must be positive".into());
    }
    if options.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    Ok(options)
}

/// Formats an optional figure as JSON: the number, or `null` for heap-only
/// cells where the stepping reference did not run.
fn json_opt(value: Option<f64>, decimals: usize) -> String {
    value.map_or_else(|| "null".to_string(), |v| format!("{v:.decimals$}"))
}

/// Finds the baseline's aggregate `heap_events_per_sec` at one node count.
/// The report lays the `aggregates` section out before `cells`, so the
/// first `"nodes": N` row after the section key is the aggregate.
fn baseline_aggregate_heap_eps(report: &str, nodes: usize) -> Option<f64> {
    let section = report.find("\"aggregates\"")?;
    let rest = &report[section..];
    let row = rest.find(&format!("\"nodes\": {nodes},"))?;
    baseline_number(&rest[row..], "heap_events_per_sec", "heap_events_per_sec")
}

/// Extracts a baseline's `"key": [ ... ]` list with whitespace stripped,
/// for whole-grid comparisons.
fn baseline_list(report: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\"");
    let field = report.find(&needle)?;
    let after = &report[field + needle.len()..];
    let open = after.find('[')?;
    let close = after.find(']')?;
    Some(after[open + 1..close].split_whitespace().collect())
}

fn scale_main(options: ScaleOptions) -> ExitCode {
    let baseline_defaults = ScaleSweepOptions::baseline();
    let opts = ScaleSweepOptions {
        node_counts: options
            .nodes
            .clone()
            .unwrap_or(baseline_defaults.node_counts.clone()),
        rho: options.rho,
        duration_ms: options.duration_ms,
        seed: options.seed,
        repetitions: options.reps,
        reference_cap: if options.heap_only {
            0
        } else {
            baseline_defaults.reference_cap
        },
        ..baseline_defaults
    };
    eprintln!(
        "[throughput] cluster-scale sweep: nodes {:?} x {} variants at rho {:.2}, {} ms windows, best-of-{} walls, reference capped at {} nodes",
        opts.node_counts,
        opts.variants.len(),
        opts.rho,
        opts.duration_ms,
        opts.repetitions,
        opts.reference_cap,
    );

    let cells = run_scale_sweep(&opts);
    let aggregates = scale_aggregates(&cells);
    let digest = scale_sweep_hash(&cells);
    let extended_digest = scale_extended_sweep_hash(&cells);
    for aggregate in &aggregates {
        match (aggregate.reference_events_per_sec(), aggregate.speedup()) {
            (Some(reference_eps), Some(speedup)) => eprintln!(
                "[throughput] {:>4} nodes: {} events, reference {:.0} events/sec, heap {:.0} events/sec, speedup {:.2}x",
                aggregate.nodes,
                aggregate.events,
                reference_eps,
                aggregate.heap_events_per_sec(),
                speedup,
            ),
            _ => eprintln!(
                "[throughput] {:>4} nodes: {} events, heap {:.0} events/sec (heap-only, above the reference cap)",
                aggregate.nodes,
                aggregate.events,
                aggregate.heap_events_per_sec(),
            ),
        }
    }
    let top = aggregates
        .iter()
        .max_by_key(|aggregate| aggregate.nodes)
        .expect("at least one node count");

    let mut cell_rows = String::new();
    for (i, cell) in cells.iter().enumerate() {
        cell_rows.push_str(&format!(
            "    {{ \"nodes\": {}, \"policy\": \"{}\", \"requests\": {}, \"served\": {}, \
             \"shed\": {}, \"steals\": {}, \"events\": {}, \"wall_reference_s\": {}, \
             \"wall_heap_s\": {:.4}, \"reference_events_per_sec\": {}, \
             \"heap_events_per_sec\": {:.0}, \"speedup\": {}, \"hash\": \"{:016x}\" }}{}\n",
            cell.nodes,
            cell.policy,
            cell.requests,
            cell.served,
            cell.shed,
            cell.steals,
            cell.events,
            json_opt(cell.wall_reference_s, 4),
            cell.wall_heap_s,
            json_opt(cell.reference_events_per_sec(), 0),
            cell.heap_events_per_sec(),
            json_opt(cell.speedup(), 2),
            cell.hash,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    let mut aggregate_rows = String::new();
    for (i, aggregate) in aggregates.iter().enumerate() {
        aggregate_rows.push_str(&format!(
            "    {{ \"nodes\": {}, \"events\": {}, \"reference_events_per_sec\": {}, \
             \"heap_events_per_sec\": {:.0}, \"speedup\": {} }}{}\n",
            aggregate.nodes,
            aggregate.events,
            json_opt(aggregate.reference_events_per_sec(), 0),
            aggregate.heap_events_per_sec(),
            json_opt(aggregate.speedup(), 2),
            if i + 1 == aggregates.len() { "" } else { "," },
        ));
    }
    let node_list = opts
        .node_counts
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let variant_list = opts
        .variants
        .iter()
        .map(|v| format!("\"{v}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let report = format!(
        "{{\n  \"bench\": \"cluster_scale_cosim\",\n  \"node_counts\": [{}],\n  \"rho\": {:.2},\n  \"seed\": {},\n  \"duration_ms\": {:.1},\n  \"scheduler\": \"np-fcfs\",\n  \"variants\": [{}],\n  \"repetitions\": {},\n  \"reference_cap\": {},\n  \"max_nodes\": {},\n  \"speedup_at_max_nodes\": {},\n  \"heap_events_per_sec_at_max_nodes\": {:.0},\n  \"sweep_hash\": \"{:016x}\",\n  \"extended_sweep_hash\": \"{:016x}\",\n  \"aggregates\": [\n{}  ],\n  \"cells\": [\n{}  ]\n}}\n",
        node_list,
        opts.rho,
        opts.seed,
        opts.duration_ms,
        variant_list,
        opts.repetitions,
        opts.reference_cap,
        top.nodes,
        json_opt(top.speedup(), 2),
        top.heap_events_per_sec(),
        digest,
        extended_digest,
        aggregate_rows,
        cell_rows,
    );
    print!("{report}");
    if let Err(error) = std::fs::write(&options.out, &report) {
        eprintln!("[throughput] could not write {}: {error}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("[throughput] report written to {}", options.out);

    if let Some(path) = &options.check_baseline {
        let baseline = match std::fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(error) => {
                eprintln!("[throughput] FAIL: could not read baseline {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        let Some(baseline_hash) = baseline_string(&baseline, "sweep_hash") else {
            eprintln!("[throughput] FAIL: no sweep_hash found in baseline {path}");
            return ExitCode::FAILURE;
        };
        let measured_hash = format!("{digest:016x}");
        if baseline_hash != measured_hash {
            eprintln!(
                "[throughput] FAIL: cluster-scale outcomes diverged from the baseline:\n\
                 [throughput]   expected sweep_hash {baseline_hash}\n\
                 [throughput]   actual   sweep_hash {measured_hash}\n\
                 [throughput] The sweep is deterministic per seed, so this is a \
                 behavioural change: re-commit the baseline only if it is intentional."
            );
            report_baseline_failure(
                "cluster-scale",
                &[("sweep_hash".into(), baseline_hash, measured_hash)],
            );
            return ExitCode::FAILURE;
        }
        eprintln!("[throughput] baseline check passed: sweep_hash {measured_hash} matches");

        // The extended digest (heap-only columns included) is only
        // comparable when the measured grid matches the baseline's; the
        // per-PR smoke runs a prefix of the nightly grid and skips it.
        let grids_match =
            baseline_list(&baseline, "node_counts") == Some(node_list.split_whitespace().collect());
        if grids_match {
            if let Some(baseline_extended) = baseline_string(&baseline, "extended_sweep_hash") {
                let measured_extended = format!("{extended_digest:016x}");
                if baseline_extended != measured_extended {
                    eprintln!(
                        "[throughput] FAIL: heap-only scale columns diverged from the baseline:\n\
                         [throughput]   expected extended_sweep_hash {baseline_extended}\n\
                         [throughput]   actual   extended_sweep_hash {measured_extended}"
                    );
                    report_baseline_failure(
                        "cluster-scale",
                        &[(
                            "extended_sweep_hash".into(),
                            baseline_extended,
                            measured_extended,
                        )],
                    );
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "[throughput] baseline check passed: extended_sweep_hash \
                     {measured_extended} matches"
                );
            }
        } else {
            eprintln!(
                "[throughput] note: measured node grid differs from the baseline's; \
                 skipping the extended_sweep_hash comparison"
            );
        }

        // Gate throughput per node count against the baseline aggregate at
        // the *same* node count, so a 64-node smoke and the 1024-node
        // nightly column each compare against their own figure.
        let mut failures: Vec<(String, String, String)> = Vec::new();
        for aggregate in &aggregates {
            let Some(baseline_eps) = baseline_aggregate_heap_eps(&baseline, aggregate.nodes) else {
                eprintln!(
                    "[throughput] note: baseline {path} has no aggregate at {} nodes; \
                     skipping its events/sec gate",
                    aggregate.nodes
                );
                continue;
            };
            if !check_events_per_sec_with(
                aggregate.heap_events_per_sec(),
                baseline_eps,
                &format!("cluster-scale heap @ {} nodes", aggregate.nodes),
                SCALE_MAX_REGRESSION,
            ) {
                failures.push((
                    format!("heap events/sec @ {} nodes", aggregate.nodes),
                    format!(
                        ">= {:.0} (baseline {baseline_eps:.0}, -{:.0}% floor)",
                        baseline_eps * (1.0 - SCALE_MAX_REGRESSION),
                        SCALE_MAX_REGRESSION * 100.0
                    ),
                    format!("{:.0}", aggregate.heap_events_per_sec()),
                ));
            }
        }
        if !failures.is_empty() {
            report_baseline_failure("cluster-scale", &failures);
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

struct FaultsOptions {
    nodes: usize,
    rho: f64,
    duration_ms: f64,
    seed: u64,
    reps: usize,
    out: String,
    check_baseline: Option<String>,
    trace_out: Option<String>,
}

fn parse_faults_args(args: impl Iterator<Item = String>) -> Result<FaultsOptions, String> {
    let defaults = FaultSweepOptions::baseline();
    let mut options = FaultsOptions {
        nodes: defaults.nodes,
        rho: defaults.rho,
        duration_ms: defaults.duration_ms,
        seed: defaults.seed,
        reps: defaults.repetitions,
        out: "BENCH_cluster_faults.json".to_string(),
        check_baseline: None,
        trace_out: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                options.nodes = args
                    .next()
                    .ok_or("--nodes requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --nodes value: {e}"))?;
            }
            "--rho" => {
                options.rho = args
                    .next()
                    .ok_or("--rho requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --rho value: {e}"))?;
            }
            "--duration-ms" => {
                options.duration_ms = args
                    .next()
                    .ok_or("--duration-ms requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --duration-ms value: {e}"))?;
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed value: {e}"))?;
            }
            "--reps" => {
                options.reps = args
                    .next()
                    .ok_or("--reps requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --reps value: {e}"))?;
            }
            "--out" => {
                options.out = args.next().ok_or("--out requires a value")?;
            }
            "--trace-out" => {
                options.trace_out = Some(args.next().ok_or("--trace-out requires a value")?);
            }
            "--check-baseline" => {
                options.check_baseline =
                    Some(args.next().ok_or("--check-baseline requires a value")?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if options.nodes == 0 {
        return Err("--nodes must be at least 1".into());
    }
    if !options.rho.is_finite() || options.rho <= 0.0 {
        return Err("--rho must be positive".into());
    }
    if !options.duration_ms.is_finite() || options.duration_ms <= 0.0 {
        return Err("--duration-ms must be positive".into());
    }
    if options.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    Ok(options)
}

fn faults_main(options: FaultsOptions) -> ExitCode {
    let opts = FaultSweepOptions {
        nodes: options.nodes,
        rho: options.rho,
        duration_ms: options.duration_ms,
        seed: options.seed,
        repetitions: options.reps,
        ..FaultSweepOptions::baseline()
    };
    eprintln!(
        "[throughput] cluster-faults sweep: {} nodes at rho {:.2}, {} ms windows, MTBF {:?}x mean service, best-of-{} walls",
        opts.nodes, opts.rho, opts.duration_ms, opts.mtbf_multipliers, opts.repetitions,
    );

    let cells = run_fault_sweep(&opts);
    let digest = fault_sweep_hash(&cells);
    for cell in &cells {
        eprintln!(
            "[throughput] MTBF {:>5.1}x ({:>6.2} ms) {:<12}: {}/{} served, {} abandoned, {} recoveries, availability {:.4}, goodput {:.4}, p99 {:.3} ms",
            cell.mtbf_multiplier,
            cell.mtbf_ms,
            cell.recovery,
            cell.served,
            cell.requests,
            cell.abandoned,
            cell.recoveries,
            cell.availability,
            cell.goodput,
            cell.p99_ms,
        );
    }
    // The headline comparison: checkpoint recovery vs restart-from-zero p99
    // at each MTBF level (cells are paired, checkpoint first).
    for pair in cells.chunks(2) {
        let [checkpoint, restart] = pair else {
            continue;
        };
        eprintln!(
            "[throughput] MTBF {:>5.1}x: checkpoint p99 {:.3} ms vs restart-zero p99 {:.3} ms ({:+.1} %)",
            checkpoint.mtbf_multiplier,
            checkpoint.p99_ms,
            restart.p99_ms,
            (checkpoint.p99_ms / restart.p99_ms - 1.0) * 100.0,
        );
    }

    let mtbf_list = opts
        .mtbf_multipliers
        .iter()
        .map(|m| format!("{m:.1}"))
        .collect::<Vec<_>>()
        .join(", ");
    let mut cell_rows = String::new();
    for (i, cell) in cells.iter().enumerate() {
        cell_rows.push_str(&format!(
            "    {{ \"mtbf_multiplier\": {:.1}, \"mtbf_ms\": {:.3}, \"recovery\": \"{}\", \
             \"requests\": {}, \"served\": {}, \"shed\": {}, \"abandoned\": {}, \
             \"crashes\": {}, \"freezes\": {}, \"recoveries\": {}, \
             \"availability\": {:.6}, \"goodput\": {:.6}, \"p99_ms\": {:.4}, \
             \"antt\": {:.4}, \"events\": {}, \"wall_s\": {:.4}, \
             \"events_per_sec\": {:.0}, \"hash\": \"{:016x}\" }}{}\n",
            cell.mtbf_multiplier,
            cell.mtbf_ms,
            cell.recovery,
            cell.requests,
            cell.served,
            cell.shed,
            cell.abandoned,
            cell.crashes,
            cell.freezes,
            cell.recoveries,
            cell.availability,
            cell.goodput,
            cell.p99_ms,
            cell.antt,
            cell.events,
            cell.wall_s,
            cell.events_per_sec(),
            cell.hash,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    let report = format!(
        "{{\n  \"bench\": \"cluster_faults\",\n  \"nodes\": {},\n  \"rho\": {:.2},\n  \"seed\": {},\n  \"duration_ms\": {:.1},\n  \"mtbf_multipliers\": [{}],\n  \"downtime_ms\": {:.1},\n  \"freeze_fraction\": {:.2},\n  \"scheduler\": \"prema\",\n  \"dispatch\": \"predictive-live\",\n  \"repetitions\": {},\n  \"sweep_hash\": \"{:016x}\",\n  \"cells\": [\n{}  ]\n}}\n",
        opts.nodes,
        opts.rho,
        opts.seed,
        opts.duration_ms,
        mtbf_list,
        opts.downtime_ms,
        opts.freeze_fraction,
        opts.repetitions,
        digest,
        cell_rows,
    );
    print!("{report}");
    if let Err(error) = std::fs::write(&options.out, &report) {
        eprintln!("[throughput] could not write {}: {error}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("[throughput] report written to {}", options.out);

    if let Some(path) = &options.check_baseline {
        let baseline = match std::fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(error) => {
                eprintln!("[throughput] FAIL: could not read baseline {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        let Some(baseline_hash) = baseline_string(&baseline, "sweep_hash") else {
            eprintln!("[throughput] FAIL: no sweep_hash found in baseline {path}");
            return ExitCode::FAILURE;
        };
        let measured_hash = format!("{digest:016x}");
        if baseline_hash != measured_hash {
            eprintln!(
                "[throughput] FAIL: cluster-faults outcomes diverged from the baseline:\n\
                 [throughput]   expected sweep_hash {baseline_hash}\n\
                 [throughput]   actual   sweep_hash {measured_hash}\n\
                 [throughput] The sweep is deterministic per seed, so this is a \
                 behavioural change: re-commit the baseline only if it is intentional."
            );
            report_baseline_failure(
                "cluster-faults",
                &[("sweep_hash".into(), baseline_hash, measured_hash)],
            );
            return ExitCode::FAILURE;
        }
        eprintln!("[throughput] baseline check passed: sweep_hash {measured_hash} matches");
    }
    if let Some(path) = &options.trace_out {
        let trace_opts = TraceScenarioOptions {
            nodes: options.nodes,
            rho: options.rho,
            seed: options.seed,
            ..TraceScenarioOptions::faults()
        };
        if !export_trace(&trace_opts, path) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

struct MigrationOptions {
    nodes: usize,
    rho: f64,
    duration_ms: f64,
    seed: u64,
    reps: usize,
    out: String,
    check_baseline: Option<String>,
    trace_out: Option<String>,
}

fn parse_migration_args(args: impl Iterator<Item = String>) -> Result<MigrationOptions, String> {
    let defaults = MigrationSweepOptions::baseline();
    let mut options = MigrationOptions {
        nodes: defaults.nodes,
        rho: defaults.rho,
        duration_ms: defaults.duration_ms,
        seed: defaults.seed,
        reps: defaults.repetitions,
        out: "BENCH_cluster_migration.json".to_string(),
        check_baseline: None,
        trace_out: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                options.nodes = args
                    .next()
                    .ok_or("--nodes requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --nodes value: {e}"))?;
            }
            "--rho" => {
                options.rho = args
                    .next()
                    .ok_or("--rho requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --rho value: {e}"))?;
            }
            "--duration-ms" => {
                options.duration_ms = args
                    .next()
                    .ok_or("--duration-ms requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --duration-ms value: {e}"))?;
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed value: {e}"))?;
            }
            "--reps" => {
                options.reps = args
                    .next()
                    .ok_or("--reps requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --reps value: {e}"))?;
            }
            "--out" => {
                options.out = args.next().ok_or("--out requires a value")?;
            }
            "--trace-out" => {
                options.trace_out = Some(args.next().ok_or("--trace-out requires a value")?);
            }
            "--check-baseline" => {
                options.check_baseline =
                    Some(args.next().ok_or("--check-baseline requires a value")?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if options.nodes < 2 {
        return Err("--nodes must be at least 2".into());
    }
    if !options.rho.is_finite() || options.rho <= 0.0 {
        return Err("--rho must be positive".into());
    }
    if !options.duration_ms.is_finite() || options.duration_ms <= 0.0 {
        return Err("--duration-ms must be positive".into());
    }
    if options.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    Ok(options)
}

fn migration_main(options: MigrationOptions) -> ExitCode {
    let opts = MigrationSweepOptions {
        nodes: options.nodes,
        rho: options.rho,
        duration_ms: options.duration_ms,
        seed: options.seed,
        repetitions: options.reps,
        ..MigrationSweepOptions::baseline()
    };
    eprintln!(
        "[throughput] cluster-migration sweep: {} nodes at rho {:.2}, {} ms windows, stragglers at {:?} speed, best-of-{} walls",
        opts.nodes, opts.rho, opts.duration_ms, opts.severities, opts.repetitions,
    );

    let cells = run_migration_sweep(&opts);
    let digest = migration_sweep_hash(&cells);
    for cell in &cells {
        eprintln!(
            "[throughput] speed {}/{} {:<8}: {}/{} served, {} degrades, {} migrations ({} B, mean evac {:.3} ms), degraded {:.3}, p99 {:.3} ms",
            cell.speed_num,
            cell.speed_den,
            cell.policy,
            cell.served,
            cell.requests,
            cell.degrades,
            cell.migrations,
            cell.migration_bytes,
            cell.mean_evacuation_ms,
            cell.degraded_fraction,
            cell.p99_ms,
        );
    }
    // The headline comparison: migration vs stay-put p99 at each severity
    // (cells are paired, migrate first).
    let mut wins = 0usize;
    for pair in cells.chunks(2) {
        let [migrate, stay] = pair else {
            continue;
        };
        if migrate.p99_ms < stay.p99_ms {
            wins += 1;
        }
        eprintln!(
            "[throughput] speed {}/{}: migrate p99 {:.3} ms vs stay p99 {:.3} ms ({:+.1} %)",
            migrate.speed_num,
            migrate.speed_den,
            migrate.p99_ms,
            stay.p99_ms,
            (migrate.p99_ms / stay.p99_ms - 1.0) * 100.0,
        );
    }

    let severity_list = opts
        .severities
        .iter()
        .map(|(num, den)| format!("\"{num}/{den}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let mut cell_rows = String::new();
    for (i, cell) in cells.iter().enumerate() {
        cell_rows.push_str(&format!(
            "    {{ \"speed\": \"{}/{}\", \"policy\": \"{}\", \
             \"requests\": {}, \"served\": {}, \"degrades\": {}, \
             \"migrations\": {}, \"migration_bytes\": {}, \
             \"mean_evacuation_ms\": {:.4}, \"degraded_fraction\": {:.6}, \
             \"p99_ms\": {:.4}, \"antt\": {:.4}, \"events\": {}, \
             \"wall_s\": {:.4}, \"hash\": \"{:016x}\" }}{}\n",
            cell.speed_num,
            cell.speed_den,
            cell.policy,
            cell.requests,
            cell.served,
            cell.degrades,
            cell.migrations,
            cell.migration_bytes,
            cell.mean_evacuation_ms,
            cell.degraded_fraction,
            cell.p99_ms,
            cell.antt,
            cell.events,
            cell.wall_s,
            cell.hash,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    let report = format!(
        "{{\n  \"bench\": \"cluster_migration\",\n  \"nodes\": {},\n  \"rho\": {:.2},\n  \"seed\": {},\n  \"duration_ms\": {:.1},\n  \"severities\": [{}],\n  \"degrade_mtbf_ms\": {:.1},\n  \"degrade_window_ms\": {:.1},\n  \"sla_multiplier\": {:.1},\n  \"scheduler\": \"prema\",\n  \"dispatch\": \"predictive-live\",\n  \"repetitions\": {},\n  \"p99_wins\": {},\n  \"sweep_hash\": \"{:016x}\",\n  \"cells\": [\n{}  ]\n}}\n",
        opts.nodes,
        opts.rho,
        opts.seed,
        opts.duration_ms,
        severity_list,
        opts.degrade_mtbf_ms,
        opts.degrade_window_ms,
        opts.sla_multiplier,
        opts.repetitions,
        wins,
        digest,
        cell_rows,
    );
    print!("{report}");
    if let Err(error) = std::fs::write(&options.out, &report) {
        eprintln!("[throughput] could not write {}: {error}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("[throughput] report written to {}", options.out);

    if let Some(path) = &options.check_baseline {
        let baseline = match std::fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(error) => {
                eprintln!("[throughput] FAIL: could not read baseline {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        let Some(baseline_hash) = baseline_string(&baseline, "sweep_hash") else {
            eprintln!("[throughput] FAIL: no sweep_hash found in baseline {path}");
            return ExitCode::FAILURE;
        };
        let measured_hash = format!("{digest:016x}");
        if baseline_hash != measured_hash {
            eprintln!(
                "[throughput] FAIL: cluster-migration outcomes diverged from the baseline:\n\
                 [throughput]   expected sweep_hash {baseline_hash}\n\
                 [throughput]   actual   sweep_hash {measured_hash}\n\
                 [throughput] The sweep is deterministic per seed, so this is a \
                 behavioural change: re-commit the baseline only if it is intentional."
            );
            report_baseline_failure(
                "cluster-migration",
                &[("sweep_hash".into(), baseline_hash, measured_hash)],
            );
            return ExitCode::FAILURE;
        }
        // The gated claim is not just identity — the committed baseline must
        // keep demonstrating the p99 win at two or more severities.
        if wins < 2 {
            eprintln!(
                "[throughput] FAIL: migration beat stay-put on p99 at only {wins} \
                 severity level(s); the baseline promises at least 2"
            );
            report_baseline_failure(
                "cluster-migration",
                &[(
                    "p99 wins".into(),
                    ">= 2 severity levels".into(),
                    format!("{wins}"),
                )],
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[throughput] baseline check passed: sweep_hash {measured_hash} matches, \
             p99 win at {wins} severity level(s)"
        );
    }
    if let Some(path) = &options.trace_out {
        let trace_opts = TraceScenarioOptions {
            nodes: options.nodes,
            rho: options.rho,
            seed: options.seed,
            ..TraceScenarioOptions::migration()
        };
        if !export_trace(&trace_opts, path) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

struct PartitionOptions {
    nodes: usize,
    rho: f64,
    duration_ms: f64,
    seed: u64,
    reps: usize,
    out: String,
    check_baseline: Option<String>,
}

fn parse_partition_args(args: impl Iterator<Item = String>) -> Result<PartitionOptions, String> {
    let defaults = PartitionSweepOptions::baseline();
    let mut options = PartitionOptions {
        nodes: defaults.nodes,
        rho: defaults.rho,
        duration_ms: defaults.duration_ms,
        seed: defaults.seed,
        reps: defaults.repetitions,
        out: "BENCH_cluster_partition.json".to_string(),
        check_baseline: None,
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                options.nodes = args
                    .next()
                    .ok_or("--nodes requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --nodes value: {e}"))?;
            }
            "--rho" => {
                options.rho = args
                    .next()
                    .ok_or("--rho requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --rho value: {e}"))?;
            }
            "--duration-ms" => {
                options.duration_ms = args
                    .next()
                    .ok_or("--duration-ms requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --duration-ms value: {e}"))?;
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed value: {e}"))?;
            }
            "--reps" => {
                options.reps = args
                    .next()
                    .ok_or("--reps requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --reps value: {e}"))?;
            }
            "--out" => {
                options.out = args.next().ok_or("--out requires a value")?;
            }
            "--check-baseline" => {
                options.check_baseline =
                    Some(args.next().ok_or("--check-baseline requires a value")?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if options.nodes < 2 {
        return Err("--nodes must be at least 2".into());
    }
    if !options.rho.is_finite() || options.rho <= 0.0 {
        return Err("--rho must be positive".into());
    }
    if !options.duration_ms.is_finite() || options.duration_ms <= 0.0 {
        return Err("--duration-ms must be positive".into());
    }
    if options.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    Ok(options)
}

fn partition_main(options: PartitionOptions) -> ExitCode {
    let opts = PartitionSweepOptions {
        nodes: options.nodes,
        rho: options.rho,
        duration_ms: options.duration_ms,
        seed: options.seed,
        repetitions: options.reps,
        ..PartitionSweepOptions::baseline()
    };
    if let Err(message) = opts.validate() {
        eprintln!("[throughput] FAIL: invalid partition sweep options: {message}");
        return ExitCode::FAILURE;
    }
    eprintln!(
        "[throughput] cluster-partition sweep: {} nodes at rho {:.2}, {} ms windows, link MTBF {:?} ms, custody timeout {} ms, best-of-{} walls",
        opts.nodes,
        opts.rho,
        opts.duration_ms,
        opts.link_mtbf_levels_ms,
        opts.delivery_timeout_ms,
        opts.repetitions,
    );

    let cells = run_partition_sweep(&opts);
    let digest = partition_sweep_hash(&cells);
    for cell in &cells {
        eprintln!(
            "[throughput] link MTBF {:>5.1} ms {:<8}: {}/{} served, {} abandoned, {} link faults, {} migrations, {} transfer failures, {} redirects, goodput {:.4}, p99 {:.3} ms",
            cell.link_mtbf_ms,
            cell.policy,
            cell.served,
            cell.requests,
            cell.abandoned,
            cell.link_faults,
            cell.migrations,
            cell.transfer_failures,
            cell.redirects,
            cell.goodput,
            cell.p99_ms,
        );
    }
    // The headline comparison: redirect vs abandon on goodput AND
    // lost-request-inclusive p99 at each MTBF level (cells are paired,
    // redirect first).
    let wins = partition_wins(&cells);
    for pair in cells.chunks(2) {
        let [redirect, abandon] = pair else {
            continue;
        };
        eprintln!(
            "[throughput] link MTBF {:>5.1} ms: redirect goodput {:.4} / p99 {:.3} ms vs abandon goodput {:.4} / p99 {:.3} ms",
            redirect.link_mtbf_ms, redirect.goodput, redirect.p99_ms, abandon.goodput, abandon.p99_ms,
        );
    }

    let mtbf_list = opts
        .link_mtbf_levels_ms
        .iter()
        .map(|mtbf| format!("{mtbf:.1}"))
        .collect::<Vec<_>>()
        .join(", ");
    let mut cell_rows = String::new();
    for (i, cell) in cells.iter().enumerate() {
        // A lost-request-inclusive p99 is infinite when >= ~1 % of the
        // stream was abandoned; JSON has no infinity, so emit null.
        let p99 = if cell.p99_ms.is_finite() {
            format!("{:.4}", cell.p99_ms)
        } else {
            "null".to_string()
        };
        cell_rows.push_str(&format!(
            "    {{ \"link_mtbf_ms\": {:.1}, \"policy\": \"{}\", \
             \"requests\": {}, \"served\": {}, \"abandoned\": {}, \
             \"link_faults\": {}, \"migrations\": {}, \
             \"transfer_failures\": {}, \"redirects\": {}, \
             \"goodput\": {:.6}, \"p99_ms\": {}, \"events\": {}, \
             \"wall_s\": {:.4}, \"hash\": \"{:016x}\" }}{}\n",
            cell.link_mtbf_ms,
            cell.policy,
            cell.requests,
            cell.served,
            cell.abandoned,
            cell.link_faults,
            cell.migrations,
            cell.transfer_failures,
            cell.redirects,
            cell.goodput,
            p99,
            cell.events,
            cell.wall_s,
            cell.hash,
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    let report = format!(
        "{{\n  \"bench\": \"cluster_partition\",\n  \"nodes\": {},\n  \"rho\": {:.2},\n  \"seed\": {},\n  \"duration_ms\": {:.1},\n  \"link_mtbf_levels_ms\": [{}],\n  \"link_outage_ms\": {:.1},\n  \"degraded_link_fraction\": {:.2},\n  \"link_bandwidth\": \"{}/{}\",\n  \"degrade_speed\": \"{}/{}\",\n  \"sla_multiplier\": {:.1},\n  \"delivery_timeout_ms\": {:.1},\n  \"scheduler\": \"prema\",\n  \"dispatch\": \"predictive-live\",\n  \"repetitions\": {},\n  \"paired_wins\": {},\n  \"sweep_hash\": \"{:016x}\",\n  \"cells\": [\n{}  ]\n}}\n",
        opts.nodes,
        opts.rho,
        opts.seed,
        opts.duration_ms,
        mtbf_list,
        opts.link_outage_ms,
        opts.degraded_link_fraction,
        opts.link_bandwidth.0,
        opts.link_bandwidth.1,
        opts.degrade_speed.0,
        opts.degrade_speed.1,
        opts.sla_multiplier,
        opts.delivery_timeout_ms,
        opts.repetitions,
        wins,
        digest,
        cell_rows,
    );
    print!("{report}");
    if let Err(error) = std::fs::write(&options.out, &report) {
        eprintln!("[throughput] could not write {}: {error}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("[throughput] report written to {}", options.out);

    if let Some(path) = &options.check_baseline {
        let baseline = match std::fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(error) => {
                eprintln!("[throughput] FAIL: could not read baseline {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        let Some(baseline_hash) = baseline_string(&baseline, "sweep_hash") else {
            eprintln!("[throughput] FAIL: no sweep_hash found in baseline {path}");
            return ExitCode::FAILURE;
        };
        let measured_hash = format!("{digest:016x}");
        if baseline_hash != measured_hash {
            eprintln!(
                "[throughput] FAIL: cluster-partition outcomes diverged from the baseline:\n\
                 [throughput]   expected sweep_hash {baseline_hash}\n\
                 [throughput]   actual   sweep_hash {measured_hash}\n\
                 [throughput] The sweep is deterministic per seed, so this is a \
                 behavioural change: re-commit the baseline only if it is intentional."
            );
            report_baseline_failure(
                "cluster-partition",
                &[("sweep_hash".into(), baseline_hash, measured_hash)],
            );
            return ExitCode::FAILURE;
        }
        // The gated claim is not just identity — the committed baseline must
        // keep demonstrating that redirect-with-backoff custody beats
        // abandoning on both goodput and lost-request-inclusive p99 at two
        // or more link-MTBF levels.
        if wins < 2 {
            eprintln!(
                "[throughput] FAIL: redirect beat abandon on goodput and p99 at only {wins} \
                 link-MTBF level(s); the baseline promises at least 2"
            );
            report_baseline_failure(
                "cluster-partition",
                &[(
                    "goodput+p99 wins".into(),
                    ">= 2 link-MTBF levels".into(),
                    format!("{wins}"),
                )],
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[throughput] baseline check passed: sweep_hash {measured_hash} matches, \
             goodput+p99 win at {wins} link-MTBF level(s)"
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("trace") {
        args.next();
        return match parse_trace_args(args) {
            Ok(options) => trace_main(options),
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.peek().map(String::as_str) == Some("cluster-partition") {
        args.next();
        return match parse_partition_args(args) {
            Ok(options) => partition_main(options),
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.peek().map(String::as_str) == Some("cluster-migration") {
        args.next();
        return match parse_migration_args(args) {
            Ok(options) => migration_main(options),
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.peek().map(String::as_str) == Some("cluster-faults") {
        args.next();
        return match parse_faults_args(args) {
            Ok(options) => faults_main(options),
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.peek().map(String::as_str) == Some("cluster-scale") {
        args.next();
        return match parse_scale_args(args) {
            Ok(options) => scale_main(options),
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    if args.peek().map(String::as_str) == Some("cluster") {
        args.next();
        return match parse_cluster_args(args) {
            Ok(options) => cluster_main(options),
            Err(message) => {
                eprintln!("{message}");
                ExitCode::FAILURE
            }
        };
    }
    drop(args);
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let opts = SuiteOptions {
        runs: options.runs,
        seed: options.seed,
        ..SuiteOptions::paper()
    };
    // All six policies non-preemptively (Figure 11) plus the eight
    // static/dynamic preemptive configurations (Figure 12). fig11 includes
    // NP-FCFS, so the baseline is part of the grid.
    let configs: Vec<SchedulerConfig> =
        fig11_configs().into_iter().chain(fig12_configs()).collect();
    let cells = opts.runs * configs.len();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!(
        "[throughput] {} runs x {} configs = {} simulations on {} threads",
        opts.runs,
        configs.len(),
        cells,
        threads
    );

    eprintln!("[throughput] serial / uncached reference ...");
    plan_cache::clear();
    let serial_start = Instant::now();
    let reference = run_grid_reference(&configs, &opts);
    let serial_s = serial_start.elapsed().as_secs_f64();

    eprintln!("[throughput] parallel / plan-cached fast path ...");
    plan_cache::clear();
    let parallel_start = Instant::now();
    let (fast, estimate_cache) = run_grid_instrumented(&configs, &opts);
    let parallel_s = parallel_start.elapsed().as_secs_f64();
    let cache = plan_cache::stats();

    let identical = fast == reference;
    let events = total_events(&fast);
    let serial_events_per_sec = total_events(&reference) as f64 / serial_s.max(f64::EPSILON);
    let speedup = serial_s / parallel_s.max(f64::EPSILON);

    // Grid-wide sanity aggregates, one summary() pass per outcome.
    let grid_summary =
        fast.iter()
            .map(SimOutcome::summary)
            .fold(OutcomeSummary::default(), |mut acc, s| {
                acc.task_count += s.task_count;
                acc.antt += s.antt;
                acc.stp += s.stp;
                acc.preemptions += s.preemptions;
                acc.kill_restarts += s.kill_restarts;
                acc.quanta_skipped += s.quanta_skipped;
                acc.replayed_token_grants += s.replayed_token_grants;
                acc
            });
    let cell_count = fast.len().max(1) as f64;
    let estimate_lookups = estimate_cache.hits + estimate_cache.misses;
    let estimate_hit_rate = estimate_cache.hits as f64 / (estimate_lookups.max(1)) as f64;

    let report = format!(
        "{{\n  \"bench\": \"sim_suite_throughput\",\n  \"runs\": {},\n  \"configs\": {},\n  \"cells\": {},\n  \"threads\": {},\n  \"scheduler_events\": {},\n  \"serial_uncached\": {{ \"wall_s\": {:.4}, \"events_per_sec\": {:.0} }},\n  \"parallel_cached\": {{ \"wall_s\": {:.4}, \"events_per_sec\": {:.0} }},\n  \"speedup\": {:.2},\n  \"plan_cache\": {{ \"hits\": {}, \"misses\": {}, \"entries\": {}, \"hit_rate\": {:.4} }},\n  \"predictor_cache\": {{ \"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4} }},\n  \"grid\": {{ \"mean_antt\": {:.4}, \"mean_stp\": {:.4}, \"preemptions\": {}, \"kill_restarts\": {}, \"quanta_skipped\": {}, \"replayed_token_grants\": {} }},\n  \"outcomes_identical\": {}\n}}\n",
        opts.runs,
        configs.len(),
        cells,
        threads,
        events,
        serial_s,
        serial_events_per_sec,
        parallel_s,
        events as f64 / parallel_s.max(f64::EPSILON),
        speedup,
        cache.hits,
        cache.misses,
        cache.entries,
        cache.hit_rate(),
        estimate_cache.hits,
        estimate_cache.misses,
        estimate_hit_rate,
        grid_summary.antt / cell_count,
        grid_summary.stp / cell_count,
        grid_summary.preemptions,
        grid_summary.kill_restarts,
        grid_summary.quanta_skipped,
        grid_summary.replayed_token_grants,
        identical,
    );
    print!("{report}");
    if let Err(error) = std::fs::write(&options.out, &report) {
        eprintln!("[throughput] could not write {}: {error}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("[throughput] report written to {}", options.out);

    if !identical {
        eprintln!("[throughput] FAIL: fast path diverged from the reference outcomes");
        return ExitCode::FAILURE;
    }

    if let Some(path) = &options.check_baseline {
        let baseline = match std::fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(error) => {
                eprintln!("[throughput] FAIL: could not read baseline {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        let Some(baseline_eps) = baseline_number(&baseline, "serial_uncached", "events_per_sec")
        else {
            eprintln!("[throughput] FAIL: no serial events_per_sec found in baseline {path}");
            return ExitCode::FAILURE;
        };
        if !check_events_per_sec(serial_events_per_sec, baseline_eps, "serial") {
            report_baseline_failure(
                "suite",
                &[(
                    "serial events_per_sec".into(),
                    format!(
                        ">= {:.0} (baseline {baseline_eps:.0}, -{:.0}% floor)",
                        baseline_eps * (1.0 - MAX_REGRESSION),
                        MAX_REGRESSION * 100.0
                    ),
                    format!("{serial_events_per_sec:.0}"),
                )],
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
