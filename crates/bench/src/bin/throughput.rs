//! Suite-throughput benchmark: measures the end-to-end wall-clock of the
//! paper's policy-comparison sweep under the optimized path (plan cache +
//! rayon-parallel grid) against the serial, uncached reference, verifies the
//! two produce bit-identical outcomes, and emits a machine-readable
//! `BENCH_sim_suite.json` report establishing the performance trajectory.
//!
//! ```text
//! throughput [--runs N] [--seed S] [--out PATH] [--check-baseline PATH]
//! ```
//!
//! Defaults reproduce the paper's setup: 25 runs of 8-task workloads under
//! all six non-preemptive policies plus the eight static/dynamic preemptive
//! configurations of Figure 12 (15 configurations with the NP-FCFS baseline).
//!
//! With `--check-baseline`, the committed report at PATH is read and the run
//! fails (non-zero exit) if the freshly measured serial `events_per_sec`
//! regressed more than 20 % below the baseline's — the CI throughput smoke
//! gates on exactly this, alongside the always-on bit-identity check.

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use prema_bench::fig11_15::{fig11_configs, fig12_configs};
use prema_bench::suite::{run_grid, run_grid_reference, SuiteOptions};
use prema_core::plan::plan_cache;
use prema_core::{OutcomeSummary, SchedulerConfig, SimOutcome};

/// Largest tolerated drop of `serial_uncached.events_per_sec` below the
/// baseline before `--check-baseline` fails the run.
const MAX_REGRESSION: f64 = 0.20;

struct Options {
    runs: usize,
    seed: u64,
    out: String,
    check_baseline: Option<String>,
}

const USAGE: &str = "usage: throughput [--runs N] [--seed S] [--out PATH] [--check-baseline PATH]";

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        runs: SuiteOptions::paper().runs,
        seed: SuiteOptions::paper().seed,
        out: "BENCH_sim_suite.json".to_string(),
        check_baseline: None,
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                options.runs = args
                    .next()
                    .ok_or("--runs requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --runs value: {e}"))?;
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed value: {e}"))?;
            }
            "--out" => {
                options.out = args.next().ok_or("--out requires a value")?;
            }
            "--check-baseline" => {
                options.check_baseline =
                    Some(args.next().ok_or("--check-baseline requires a value")?);
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if options.runs == 0 {
        return Err("--runs must be at least 1".into());
    }
    Ok(options)
}

fn total_events(outcomes: &[SimOutcome]) -> u64 {
    outcomes.iter().map(|o| o.scheduler_invocations).sum()
}

/// Extracts `"serial_uncached": { ..., "events_per_sec": <number> }` from a
/// previously emitted report. The workspace is hermetic (no serde_json), so
/// this parses the report's own fixed layout: find the section key, then the
/// first `events_per_sec` after it.
fn baseline_serial_events_per_sec(report: &str) -> Option<f64> {
    let section = report.find("\"serial_uncached\"")?;
    let rest = &report[section..];
    let field = rest.find("\"events_per_sec\"")?;
    let after = &rest[field + "\"events_per_sec\"".len()..];
    let number: String = after
        .chars()
        .skip_while(|c| *c == ':' || c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e' || *c == 'E')
        .collect();
    number.parse().ok()
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let opts = SuiteOptions {
        runs: options.runs,
        seed: options.seed,
        ..SuiteOptions::paper()
    };
    // All six policies non-preemptively (Figure 11) plus the eight
    // static/dynamic preemptive configurations (Figure 12). fig11 includes
    // NP-FCFS, so the baseline is part of the grid.
    let configs: Vec<SchedulerConfig> =
        fig11_configs().into_iter().chain(fig12_configs()).collect();
    let cells = opts.runs * configs.len();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!(
        "[throughput] {} runs x {} configs = {} simulations on {} threads",
        opts.runs,
        configs.len(),
        cells,
        threads
    );

    eprintln!("[throughput] serial / uncached reference ...");
    plan_cache::clear();
    let serial_start = Instant::now();
    let reference = run_grid_reference(&configs, &opts);
    let serial_s = serial_start.elapsed().as_secs_f64();

    eprintln!("[throughput] parallel / plan-cached fast path ...");
    plan_cache::clear();
    let parallel_start = Instant::now();
    let fast = run_grid(&configs, &opts);
    let parallel_s = parallel_start.elapsed().as_secs_f64();
    let cache = plan_cache::stats();

    let identical = fast == reference;
    let events = total_events(&fast);
    let serial_events_per_sec = total_events(&reference) as f64 / serial_s.max(f64::EPSILON);
    let speedup = serial_s / parallel_s.max(f64::EPSILON);

    // Grid-wide sanity aggregates, one summary() pass per outcome.
    let grid_summary =
        fast.iter()
            .map(SimOutcome::summary)
            .fold(OutcomeSummary::default(), |mut acc, s| {
                acc.task_count += s.task_count;
                acc.antt += s.antt;
                acc.stp += s.stp;
                acc.preemptions += s.preemptions;
                acc.kill_restarts += s.kill_restarts;
                acc
            });
    let cell_count = fast.len().max(1) as f64;

    let report = format!(
        "{{\n  \"bench\": \"sim_suite_throughput\",\n  \"runs\": {},\n  \"configs\": {},\n  \"cells\": {},\n  \"threads\": {},\n  \"scheduler_events\": {},\n  \"serial_uncached\": {{ \"wall_s\": {:.4}, \"events_per_sec\": {:.0} }},\n  \"parallel_cached\": {{ \"wall_s\": {:.4}, \"events_per_sec\": {:.0} }},\n  \"speedup\": {:.2},\n  \"plan_cache\": {{ \"hits\": {}, \"misses\": {}, \"entries\": {}, \"hit_rate\": {:.4} }},\n  \"grid\": {{ \"mean_antt\": {:.4}, \"mean_stp\": {:.4}, \"preemptions\": {}, \"kill_restarts\": {} }},\n  \"outcomes_identical\": {}\n}}\n",
        opts.runs,
        configs.len(),
        cells,
        threads,
        events,
        serial_s,
        serial_events_per_sec,
        parallel_s,
        events as f64 / parallel_s.max(f64::EPSILON),
        speedup,
        cache.hits,
        cache.misses,
        cache.entries,
        cache.hit_rate(),
        grid_summary.antt / cell_count,
        grid_summary.stp / cell_count,
        grid_summary.preemptions,
        grid_summary.kill_restarts,
        identical,
    );
    print!("{report}");
    if let Err(error) = std::fs::write(&options.out, &report) {
        eprintln!("[throughput] could not write {}: {error}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("[throughput] report written to {}", options.out);

    if !identical {
        eprintln!("[throughput] FAIL: fast path diverged from the reference outcomes");
        return ExitCode::FAILURE;
    }

    if let Some(path) = &options.check_baseline {
        let baseline = match std::fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(error) => {
                eprintln!("[throughput] FAIL: could not read baseline {path}: {error}");
                return ExitCode::FAILURE;
            }
        };
        let Some(baseline_eps) = baseline_serial_events_per_sec(&baseline) else {
            eprintln!("[throughput] FAIL: no serial events_per_sec found in baseline {path}");
            return ExitCode::FAILURE;
        };
        let floor = baseline_eps * (1.0 - MAX_REGRESSION);
        if serial_events_per_sec < floor {
            eprintln!(
                "[throughput] FAIL: serial events/sec regressed more than {:.0}%: \
                 measured {:.0} < floor {:.0} (baseline {:.0})",
                MAX_REGRESSION * 100.0,
                serial_events_per_sec,
                floor,
                baseline_eps
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "[throughput] baseline check passed: {:.0} events/sec >= {:.0} \
             (baseline {:.0}, tolerance {:.0}%)",
            serial_events_per_sec,
            floor,
            baseline_eps,
            MAX_REGRESSION * 100.0
        );
    }
    ExitCode::SUCCESS
}
