//! Suite-throughput benchmark: measures the end-to-end wall-clock of the
//! paper's policy-comparison sweep under the optimized path (plan cache +
//! rayon-parallel grid) against the serial, uncached reference, verifies the
//! two produce bit-identical outcomes, and emits a machine-readable
//! `BENCH_sim_suite.json` report establishing the performance trajectory.
//!
//! ```text
//! throughput [--runs N] [--seed S] [--out PATH]
//! ```
//!
//! Defaults reproduce the paper's setup: 25 runs of 8-task workloads under
//! all six non-preemptive policies plus the eight static/dynamic preemptive
//! configurations of Figure 12 (15 configurations with the NP-FCFS baseline).

use std::env;
use std::process::ExitCode;
use std::time::Instant;

use prema_bench::fig11_15::{fig11_configs, fig12_configs};
use prema_bench::suite::{run_grid, run_grid_reference, SuiteOptions};
use prema_core::plan::plan_cache;
use prema_core::{SchedulerConfig, SimOutcome};

struct Options {
    runs: usize,
    seed: u64,
    out: String,
}

const USAGE: &str = "usage: throughput [--runs N] [--seed S] [--out PATH]";

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        runs: SuiteOptions::paper().runs,
        seed: SuiteOptions::paper().seed,
        out: "BENCH_sim_suite.json".to_string(),
    };
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                options.runs = args
                    .next()
                    .ok_or("--runs requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --runs value: {e}"))?;
            }
            "--seed" => {
                options.seed = args
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed value: {e}"))?;
            }
            "--out" => {
                options.out = args.next().ok_or("--out requires a value")?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if options.runs == 0 {
        return Err("--runs must be at least 1".into());
    }
    Ok(options)
}

fn total_events(outcomes: &[SimOutcome]) -> u64 {
    outcomes.iter().map(|o| o.scheduler_invocations).sum()
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let opts = SuiteOptions {
        runs: options.runs,
        seed: options.seed,
        ..SuiteOptions::paper()
    };
    // All six policies non-preemptively (Figure 11) plus the eight
    // static/dynamic preemptive configurations (Figure 12). fig11 includes
    // NP-FCFS, so the baseline is part of the grid.
    let configs: Vec<SchedulerConfig> =
        fig11_configs().into_iter().chain(fig12_configs()).collect();
    let cells = opts.runs * configs.len();
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!(
        "[throughput] {} runs x {} configs = {} simulations on {} threads",
        opts.runs,
        configs.len(),
        cells,
        threads
    );

    eprintln!("[throughput] serial / uncached reference ...");
    plan_cache::clear();
    let serial_start = Instant::now();
    let reference = run_grid_reference(&configs, &opts);
    let serial_s = serial_start.elapsed().as_secs_f64();

    eprintln!("[throughput] parallel / plan-cached fast path ...");
    plan_cache::clear();
    let parallel_start = Instant::now();
    let fast = run_grid(&configs, &opts);
    let parallel_s = parallel_start.elapsed().as_secs_f64();
    let cache = plan_cache::stats();

    let identical = fast == reference;
    let events = total_events(&fast);
    let speedup = serial_s / parallel_s.max(f64::EPSILON);

    let report = format!(
        "{{\n  \"bench\": \"sim_suite_throughput\",\n  \"runs\": {},\n  \"configs\": {},\n  \"cells\": {},\n  \"threads\": {},\n  \"scheduler_events\": {},\n  \"serial_uncached\": {{ \"wall_s\": {:.4}, \"events_per_sec\": {:.0} }},\n  \"parallel_cached\": {{ \"wall_s\": {:.4}, \"events_per_sec\": {:.0} }},\n  \"speedup\": {:.2},\n  \"plan_cache\": {{ \"hits\": {}, \"misses\": {}, \"entries\": {}, \"hit_rate\": {:.4} }},\n  \"outcomes_identical\": {}\n}}\n",
        opts.runs,
        configs.len(),
        cells,
        threads,
        events,
        serial_s,
        total_events(&reference) as f64 / serial_s.max(f64::EPSILON),
        parallel_s,
        events as f64 / parallel_s.max(f64::EPSILON),
        speedup,
        cache.hits,
        cache.misses,
        cache.entries,
        cache.hit_rate(),
        identical,
    );
    print!("{report}");
    if let Err(error) = std::fs::write(&options.out, &report) {
        eprintln!("[throughput] could not write {}: {error}", options.out);
        return ExitCode::FAILURE;
    }
    eprintln!("[throughput] report written to {}", options.out);

    if !identical {
        eprintln!("[throughput] FAIL: fast path diverged from the reference outcomes");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
