//! The experiment harness binary: regenerates every table and figure of the
//! PREMA paper's evaluation section.
//!
//! ```text
//! experiments [EXPERIMENT] [--runs N] [--seed S]
//!
//! EXPERIMENT: all (default), table1, table2, fig1, fig5, fig6, fig7, fig9,
//!             fig10, fig11, fig12, fig13, fig14, fig15, prediction,
//!             overhead, sensitivity
//! ```

use std::env;
use std::process::ExitCode;

use npu_sim::NpuConfig;
use prema_bench::suite::SuiteOptions;
use prema_bench::{
    fig01, fig05_06, fig07, fig09, fig10, fig11_15, fig14, overhead, prediction, sensitivity,
    tables,
};
use prema_core::SchedulerConfig;
use prema_workload::colocation::ColocationConfig;
use prema_workload::generator::WorkloadConfig;

struct Options {
    experiment: String,
    runs: usize,
    seed: u64,
}

const USAGE: &str = "usage: experiments [EXPERIMENT] [--runs N] [--seed S]\n\
experiments: all, table1, table2, fig1, fig5, fig6, fig7, fig9, fig10, fig11, \
fig12, fig13, fig14, fig15, prediction, overhead, sensitivity";

fn parse_args() -> Result<Options, String> {
    let mut experiment = "all".to_string();
    let mut runs = 5usize;
    let mut seed = 2020u64;
    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                runs = args
                    .next()
                    .ok_or("--runs requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --runs value: {e}"))?;
            }
            "--seed" => {
                seed = args
                    .next()
                    .ok_or("--seed requires a value")?
                    .parse()
                    .map_err(|e| format!("invalid --seed value: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(USAGE.to_string());
            }
            other if !other.starts_with('-') => experiment = other.to_string(),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    if runs == 0 {
        return Err("--runs must be at least 1".into());
    }
    Ok(Options {
        experiment,
        runs,
        seed,
    })
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };

    let npu = NpuConfig::paper_default();
    let suite = SuiteOptions {
        runs: options.runs,
        seed: options.seed,
        workload: WorkloadConfig::paper_default(),
        npu: npu.clone(),
        parallel: true,
    };

    let run_one = |name: &str| -> Option<String> {
        match name {
            "table1" => Some(tables::table1(&npu)),
            "table2" => Some(tables::table2(&SchedulerConfig::paper_default())),
            "fig1" => Some(fig01::report(&npu, &ColocationConfig::paper_default()).1),
            "fig5" => Some(fig05_06::format_figure5(&fig05_06::figure5(
                &npu,
                options.runs,
                options.seed,
            ))),
            "fig6" => Some(fig05_06::format_figure6(&fig05_06::figure6(
                &npu,
                options.runs,
                options.seed,
            ))),
            "fig7" => Some(fig07::report(dnn_models::ModelKind::CnnVggNet, 1000, options.seed).1),
            "fig9" => Some(fig09::report(30, options.seed)),
            "fig10" => Some(fig10::report(&npu).1),
            "fig11" => Some(fig11_15::figure11(&suite).1),
            "fig12" => Some(fig11_15::figure12(&suite).1),
            "fig13" => Some(fig11_15::figure13(&suite).1),
            "fig14" => Some(fig14::report(&npu, options.runs, options.seed).1),
            "fig15" => Some(fig11_15::figure15(&suite).1),
            "prediction" => Some(prediction::report(&npu, options.runs, options.seed).1),
            "overhead" => Some(overhead::report(&npu).1),
            "sensitivity" => Some(sensitivity::report(&npu, options.runs, options.seed)),
            _ => None,
        }
    };

    let all = [
        "table1",
        "table2",
        "fig1",
        "fig5",
        "fig6",
        "fig7",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "prediction",
        "overhead",
        "sensitivity",
    ];

    if options.experiment == "all" {
        for name in all {
            eprintln!("[experiments] running {name} ...");
            match run_one(name) {
                Some(report) => println!("{report}\n"),
                None => unreachable!("all experiment names are valid"),
            }
        }
        ExitCode::SUCCESS
    } else {
        match run_one(&options.experiment) {
            Some(report) => {
                println!("{report}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment '{}'\n{USAGE}", options.experiment);
                ExitCode::FAILURE
            }
        }
    }
}
