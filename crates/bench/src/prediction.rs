//! Prediction-model accuracy experiments (Sections VI-A and VI-D).
//!
//! * VI-A: the analytical predictor's mean relative estimation error against
//!   the simulated isolated execution times (the paper reports 1.6 %).
//! * VI-D: correlation between predicted and simulated latencies, and how
//!   close PREMA-with-predictor gets to PREMA-with-oracle estimates.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use npu_sim::NpuConfig;
use prema_core::{NpuSimulator, SchedulerConfig};
use prema_metrics::{correlation, MultiTaskMetrics, TableBuilder};
use prema_workload::generator::{generate_workload, WorkloadConfig};
use prema_workload::prepare::{outcomes_of, prepare_workload};

use crate::suite::{build_predictor, run_seed};

/// Results of the prediction-accuracy study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionAccuracy {
    /// Mean relative error of predicted vs simulated isolated latency.
    pub mean_relative_error: f64,
    /// Pearson correlation between predicted and simulated latencies.
    pub latency_correlation: f64,
    /// PREMA ANTT with predictor estimates divided by PREMA ANTT with oracle
    /// estimates (≥ 1; the paper reports 99 %-of-oracle behaviour, i.e. ~1.01).
    pub antt_vs_oracle: f64,
    /// PREMA STP with predictor estimates divided by oracle STP (≤ 1).
    pub stp_vs_oracle: f64,
    /// Number of tasks measured.
    pub task_count: usize,
}

/// Runs the prediction accuracy study over `runs` generated workloads.
///
/// Each run draws its workload from a deterministically derived per-run seed
/// and is simulated independently, so the runs fan out over all cores while
/// the pooled statistics stay identical to a serial sweep.
pub fn run(npu: &NpuConfig, runs: usize, seed: u64) -> PredictionAccuracy {
    assert!(runs > 0, "at least one run is required");
    let predictor = build_predictor(npu, seed);
    let workload_cfg = WorkloadConfig::paper_default();
    let prema = SchedulerConfig::paper_default();
    let sim = NpuSimulator::new(npu.clone(), prema);

    struct RunSamples {
        predicted: Vec<f64>,
        actual: Vec<f64>,
        predictor_metrics: MultiTaskMetrics,
        oracle_metrics: MultiTaskMetrics,
    }

    let run_indices: Vec<usize> = (0..runs).collect();
    let samples: Vec<RunSamples> = run_indices
        .par_iter()
        .map(|&run| {
            let mut rng = StdRng::seed_from_u64(run_seed(seed, run));
            let spec = generate_workload(&workload_cfg, &mut rng);
            let with_predictor = prepare_workload(&spec, npu, Some(&predictor));
            let with_oracle = prepare_workload(&spec, npu, None);

            let predicted: Vec<f64> = with_predictor
                .tasks
                .iter()
                .map(|t| t.estimated_cycles().get() as f64)
                .collect();
            let actual: Vec<f64> = with_predictor
                .tasks
                .iter()
                .map(|t| t.isolated_cycles().get() as f64)
                .collect();

            let predictor_outcome = sim.run(&with_predictor.tasks);
            let oracle_outcome = sim.run(&with_oracle.tasks);
            RunSamples {
                predicted,
                actual,
                predictor_metrics: MultiTaskMetrics::from_outcomes(&outcomes_of(
                    &predictor_outcome.records,
                )),
                oracle_metrics: MultiTaskMetrics::from_outcomes(&outcomes_of(
                    &oracle_outcome.records,
                )),
            }
        })
        .collect();

    // Pool in run order so the float reductions are deterministic.
    let mut predicted = Vec::new();
    let mut actual = Vec::new();
    let mut predictor_metrics = Vec::new();
    let mut oracle_metrics = Vec::new();
    for sample in samples {
        predicted.extend(sample.predicted);
        actual.extend(sample.actual);
        predictor_metrics.push(sample.predictor_metrics);
        oracle_metrics.push(sample.oracle_metrics);
    }

    let mean_relative_error = predicted
        .iter()
        .zip(&actual)
        .map(|(p, a)| if *a > 0.0 { (p - a).abs() / a } else { 0.0 })
        .sum::<f64>()
        / predicted.len().max(1) as f64;

    let predictor_avg = prema_metrics::average_metrics(&predictor_metrics);
    let oracle_avg = prema_metrics::average_metrics(&oracle_metrics);

    PredictionAccuracy {
        mean_relative_error,
        latency_correlation: correlation(&predicted, &actual).unwrap_or(0.0),
        antt_vs_oracle: if oracle_avg.antt > 0.0 {
            predictor_avg.antt / oracle_avg.antt
        } else {
            0.0
        },
        stp_vs_oracle: if oracle_avg.stp > 0.0 {
            predictor_avg.stp / oracle_avg.stp
        } else {
            0.0
        },
        task_count: predicted.len(),
    }
}

/// Formats the prediction-accuracy report.
pub fn report(npu: &NpuConfig, runs: usize, seed: u64) -> (PredictionAccuracy, String) {
    let accuracy = run(npu, runs, seed);
    let table = TableBuilder::new(vec!["metric".into(), "value".into(), "paper".into()])
        .title("Sections VI-A / VI-D: prediction model accuracy")
        .row(vec![
            "mean relative estimation error".into(),
            format!("{:.1}%", accuracy.mean_relative_error * 100.0),
            "1.6%".into(),
        ])
        .row(vec![
            "predicted vs simulated correlation".into(),
            format!("{:.1}%", accuracy.latency_correlation * 100.0),
            "98%".into(),
        ])
        .row(vec![
            "PREMA ANTT vs oracle".into(),
            format!("{:.1}%", 100.0 / accuracy.antt_vs_oracle.max(f64::EPSILON)),
            "99%".into(),
        ])
        .row(vec![
            "PREMA STP vs oracle".into(),
            format!("{:.1}%", accuracy.stp_vs_oracle * 100.0),
            "99%".into(),
        ])
        .build();
    (accuracy, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictor_is_accurate_and_highly_correlated() {
        let npu = NpuConfig::paper_default();
        let accuracy = run(&npu, 2, 21);
        assert!(accuracy.task_count >= 16);
        assert!(
            accuracy.mean_relative_error < 0.25,
            "error {}",
            accuracy.mean_relative_error
        );
        assert!(
            accuracy.latency_correlation > 0.9,
            "correlation {}",
            accuracy.latency_correlation
        );
        // PREMA with the predictor stays close to PREMA with oracle estimates.
        assert!(accuracy.antt_vs_oracle < 1.5, "{}", accuracy.antt_vs_oracle);
        assert!(accuracy.stp_vs_oracle > 0.7, "{}", accuracy.stp_vs_oracle);
    }
}
