//! Figure 7: per-layer activation density of VGGNet across many inference
//! inputs — the stability argument behind profile-based latency prediction.

use dnn_models::{ActivationDensityModel, ModelKind};
use prema_metrics::TableBuilder;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One layer's observed density statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DensityRow {
    /// Layer name (c01..c13, fc1..).
    pub layer: String,
    /// Mean observed density across runs.
    pub mean: f64,
    /// Minimum observed density.
    pub min: f64,
    /// Maximum observed density.
    pub max: f64,
}

/// Runs the Figure 7 characterization: `runs` inferences of `model`.
pub fn run(model: ModelKind, runs: usize, seed: u64) -> Vec<DensityRow> {
    let density = ActivationDensityModel::for_model(model);
    let mut rng = StdRng::seed_from_u64(seed);
    let summaries = density.characterize(&mut rng, runs);
    density
        .layer_names()
        .iter()
        .zip(summaries)
        .map(|(name, s)| DensityRow {
            layer: name.clone(),
            mean: s.mean,
            min: s.min,
            max: s.max,
        })
        .collect()
}

/// Formats the Figure 7 report.
pub fn report(model: ModelKind, runs: usize, seed: u64) -> (Vec<DensityRow>, String) {
    let rows = run(model, runs, seed);
    let mut table = TableBuilder::new(vec![
        "layer".into(),
        "mean density".into(),
        "min".into(),
        "max".into(),
    ])
    .title(format!(
        "Figure 7: {} per-layer activation density over {runs} inferences",
        model.paper_name()
    ));
    for row in &rows {
        table = table.row(vec![
            row.layer.clone(),
            format!("{:.1}%", row.mean * 100.0),
            format!("{:.1}%", row.min * 100.0),
            format!("{:.1}%", row.max * 100.0),
        ]);
    }
    (rows, table.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_densities_are_stable_across_runs() {
        let (rows, text) = report(ModelKind::CnnVggNet, 100, 1);
        assert_eq!(rows.len(), 16);
        for row in &rows {
            assert!(row.mean > 0.0 && row.mean < 1.0);
            assert!(row.max - row.min < 0.5, "{} band too wide", row.layer);
        }
        assert!(text.contains("Figure 7"));
        assert!(text.contains("c01") || text.contains("fc"));
    }
}
