//! The straggler-mitigation benchmark: deadline-triggered checkpoint
//! migration vs riding out degraded nodes.
//!
//! This sweep answers the question PR 7's machinery exists for: *when nodes
//! merely slow down instead of dying, does evacuating their started work
//! over a priced interconnect beat staying put?* For each degrade severity
//! (the straggler's fractional clock speed) it generates one seeded
//! open-loop request stream and one seeded degrade-only fault schedule,
//! then serves the identical driving twice — once with
//! [`MigrationConfig`]-governed migration and once with migration off.
//! Both cells run through **both** closed-loop drivers and are asserted
//! bit-identical, every cell asserts exactly-once conservation and the
//! interconnect byte accounting, and the per-cell digests fold into the
//! sweep hash the `throughput cluster-migration --check-baseline` gate
//! compares.
//!
//! The headline comparison is p99 turnaround per severity: migration must
//! beat migration-off wherever the stragglers bite (the committed
//! `BENCH_cluster_migration.json` records the margins).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use npu_sim::NpuConfig;
use prema_cluster::{
    online_outcome_hash, ClusterFaultPlan, ClusterMetrics, MigrationConfig, OnlineClusterConfig,
    OnlineClusterSimulator, OnlineDispatchPolicy, OnlineOutcome,
};
use prema_core::SchedulerConfig;
use prema_workload::arrivals::{generate_open_loop, OpenLoopConfig};
use prema_workload::prepare::prepare_workload;
use prema_workload::FaultProcess;

use crate::cluster::{mean_service_ms, offered_rate_per_ms};
use crate::suite::{build_predictor, run_seed};

/// Options controlling a straggler-migration sweep.
#[derive(Debug, Clone)]
pub struct MigrationSweepOptions {
    /// Cluster size.
    pub nodes: usize,
    /// Offered load (fraction of cluster capacity).
    pub rho: f64,
    /// RNG seed; per-severity request streams and degrade schedules derive
    /// from it.
    pub seed: u64,
    /// Length of each generated arrival window, in milliseconds.
    pub duration_ms: f64,
    /// The degrade severities to sweep: each is the straggler clock as a
    /// `(num, den)` fraction of full speed.
    pub severities: Vec<(u32, u32)>,
    /// How many of the cluster's nodes straggle (nodes `0..degraded_nodes`
    /// receive degrade windows; the rest stay healthy). The classic
    /// straggler scenario — and the regime where evacuation has somewhere
    /// worth going.
    pub degraded_nodes: usize,
    /// Mean time between degrade windows per straggler node, in
    /// milliseconds.
    pub degrade_mtbf_ms: f64,
    /// Mean degrade-window length, in milliseconds.
    pub degrade_window_ms: f64,
    /// The migration SLA, as a multiple of the mean service time.
    pub sla_multiplier: f64,
    /// The per-node scheduler.
    pub scheduler: SchedulerConfig,
    /// The per-node NPU configuration.
    pub npu: NpuConfig,
    /// Wall-clock repetitions per (cell, driver); the minimum is reported.
    pub repetitions: usize,
}

impl MigrationSweepOptions {
    /// The committed-baseline sweep: 4 PREMA nodes at 70 % offered load,
    /// 400 ms runs, two straggler nodes at 1/2, 1/4 and 1/8 speed in
    /// ~120 ms degrade windows every ~250 ms, SLA at 8× the mean service
    /// time. Long windows are the regime where evacuation pays: the
    /// stay-cost of riding out the slowdown dwarfs transfer + restore.
    pub fn baseline() -> Self {
        MigrationSweepOptions {
            nodes: 4,
            rho: 0.7,
            seed: 2020,
            duration_ms: 400.0,
            severities: vec![(1, 2), (1, 4), (1, 8)],
            degraded_nodes: 2,
            degrade_mtbf_ms: 250.0,
            degrade_window_ms: 120.0,
            sla_multiplier: 8.0,
            scheduler: SchedulerConfig::paper_default(),
            npu: NpuConfig::paper_default(),
            repetitions: 3,
        }
    }

    /// A reduced sweep for unit tests and quick local runs.
    pub fn quick() -> Self {
        MigrationSweepOptions {
            nodes: 2,
            degraded_nodes: 1,
            duration_ms: 80.0,
            severities: vec![(1, 8)],
            degrade_mtbf_ms: 40.0,
            degrade_window_ms: 25.0,
            repetitions: 1,
            ..MigrationSweepOptions::baseline()
        }
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < 2 {
            return Err("migration needs at least two nodes".into());
        }
        if !self.rho.is_finite() || self.rho <= 0.0 {
            return Err("rho must be positive and finite".into());
        }
        if !self.duration_ms.is_finite() || self.duration_ms <= 0.0 {
            return Err("duration must be positive and finite".into());
        }
        if self.degraded_nodes == 0 || self.degraded_nodes >= self.nodes {
            return Err(
                "the straggler set must be non-empty and leave at least one healthy node".into(),
            );
        }
        if self.severities.is_empty() {
            return Err("at least one degrade severity is required".into());
        }
        if self
            .severities
            .iter()
            .any(|&(num, den)| num == 0 || num >= den)
        {
            return Err("each severity must be a proper fraction (0 < num < den)".into());
        }
        if !self.degrade_mtbf_ms.is_finite() || self.degrade_mtbf_ms <= 0.0 {
            return Err("degrade MTBF must be positive and finite".into());
        }
        if !self.degrade_window_ms.is_finite() || self.degrade_window_ms <= 0.0 {
            return Err("degrade window must be positive and finite".into());
        }
        if !self.sla_multiplier.is_finite() || self.sla_multiplier <= 0.0 {
            return Err("SLA multiplier must be positive and finite".into());
        }
        if self.repetitions == 0 {
            return Err("at least one repetition is required".into());
        }
        self.npu.validate()?;
        self.scheduler.validate()?;
        Ok(())
    }
}

/// One cell of the migration sweep: a (severity, policy) pair measured
/// under both drivers on the identical driving.
#[derive(Debug, Clone)]
pub struct MigrationCell {
    /// The straggler clock numerator.
    pub speed_num: u32,
    /// The straggler clock denominator.
    pub speed_den: u32,
    /// The policy label (`migrate` or `stay`).
    pub policy: &'static str,
    /// Number of requests in the stream.
    pub requests: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Degrade windows injected.
    pub degrades: u64,
    /// Checkpoint evacuations performed (zero in `stay` cells).
    pub migrations: u64,
    /// Checkpoint context shipped over the interconnect, in bytes.
    pub migration_bytes: u64,
    /// Mean evacuation latency (decision until delivery), milliseconds.
    pub mean_evacuation_ms: f64,
    /// Fraction of node-time spent inside a degrade window.
    pub degraded_fraction: f64,
    /// 99th-percentile turnaround of the served work, milliseconds.
    pub p99_ms: f64,
    /// Average normalized turnaround time of the served work.
    pub antt: f64,
    /// Total scheduler wakeups (identical under both drivers).
    pub events: u64,
    /// Best event-heap wall clock, seconds.
    pub wall_s: f64,
    /// The deterministic outcome digest (identical under both drivers).
    pub hash: u64,
}

fn timed<F: FnMut() -> OnlineOutcome>(mut run: F, repetitions: usize) -> (OnlineOutcome, f64) {
    let mut best = f64::INFINITY;
    let mut outcome: Option<OnlineOutcome> = None;
    for _ in 0..repetitions {
        let start = Instant::now();
        let this = run();
        let wall = start.elapsed().as_secs_f64();
        best = best.min(wall);
        if let Some(previous) = &outcome {
            assert_eq!(previous, &this, "nondeterministic degraded closed-loop run");
        }
        outcome = Some(this);
    }
    (outcome.expect("at least one repetition"), best)
}

/// Runs the migration sweep. Cells are laid out severity-major, migrate
/// before stay; per severity both policies answer the *identical* request
/// stream and degrade schedule, so the comparison is paired. Every cell's
/// reference and event-heap outcomes are asserted bit-identical, and every
/// cell asserts exactly-once conservation and interconnect byte accounting.
///
/// # Panics
///
/// Panics if the options are invalid, if the two drivers ever diverge, or
/// if any request is lost or duplicated.
pub fn run_migration_sweep(opts: &MigrationSweepOptions) -> Vec<MigrationCell> {
    if let Err(msg) = opts.validate() {
        panic!("invalid MigrationSweepOptions: {msg}");
    }
    let predictor = build_predictor(&opts.npu, opts.seed);
    let template = OpenLoopConfig::poisson(1.0, opts.duration_ms);
    let service_ms = mean_service_ms(&template.models, &template.batch_sizes, &opts.npu);
    let rate = offered_rate_per_ms(opts.rho, opts.nodes, service_ms);
    let sla_ms = opts.sla_multiplier * service_ms;

    let mut cells = Vec::with_capacity(opts.severities.len() * 2);
    for (level, &(num, den)) in opts.severities.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(run_seed(opts.seed, level));
        let spec = generate_open_loop(&OpenLoopConfig::poisson(rate, opts.duration_ms), &mut rng);
        let prepared = prepare_workload(&spec, &opts.npu, Some(&predictor));
        // The degrade schedule draws from the same per-severity stream,
        // after the arrivals — one driving per severity, answered by both
        // policies. degrade_fraction 1.0 makes every sampled window a
        // straggler window at the swept speed.
        let schedule = FaultProcess::crashes(
            opts.degraded_nodes,
            opts.degrade_mtbf_ms,
            opts.degrade_window_ms,
            opts.duration_ms,
        )
        .with_degradation(1.0, num, den)
        .generate(&mut rng);

        for (label, migration) in [
            ("migrate", Some(MigrationConfig::new(sla_ms))),
            ("stay", None),
        ] {
            let mut config = OnlineClusterConfig::new(
                opts.nodes,
                opts.scheduler.clone(),
                OnlineDispatchPolicy::Predictive,
            )
            .with_faults(ClusterFaultPlan::new(schedule.clone()));
            if let Some(migration) = migration {
                config = config.with_migration(migration);
            }
            let online = OnlineClusterSimulator::new(config);
            let (reference, _) = timed(|| online.run_reference(&prepared.tasks), opts.repetitions);
            let (heap, wall_s) = timed(|| online.run(&prepared.tasks), opts.repetitions);
            assert_eq!(
                heap, reference,
                "event-heap loop diverged from the stepping reference at \
                 severity {num}/{den} under {label}"
            );
            let mut accounted: Vec<u64> = heap
                .cluster
                .merged_records()
                .iter()
                .map(|r| r.id.0)
                .chain(heap.shed.iter().map(|r| r.id.0))
                .chain(heap.abandoned.iter().map(|r| r.id.0))
                .collect();
            accounted.sort_unstable();
            let mut expected: Vec<u64> = prepared.tasks.iter().map(|t| t.request.id.0).collect();
            expected.sort_unstable();
            assert_eq!(
                accounted, expected,
                "task conservation violated at severity {num}/{den} under {label}"
            );
            assert_eq!(
                heap.migration_bytes,
                heap.migration_log.iter().map(|r| r.bytes).sum::<u64>(),
                "interconnect byte accounting diverged at severity {num}/{den} under {label}"
            );
            let metrics = ClusterMetrics::from_online(&heap, &opts.npu);
            cells.push(MigrationCell {
                speed_num: num,
                speed_den: den,
                policy: label,
                requests: prepared.tasks.len(),
                served: heap.served(),
                degrades: heap.degrades,
                migrations: heap.migrations,
                migration_bytes: heap.migration_bytes,
                mean_evacuation_ms: metrics.mean_evacuation_ms,
                degraded_fraction: metrics.degraded_fraction,
                p99_ms: metrics.p99_ms,
                antt: metrics.antt,
                events: heap.cluster.scheduler_invocations(),
                wall_s,
                hash: online_outcome_hash(&heap),
            });
        }
    }
    cells
}

/// Folds every cell digest into the sweep-identity digest the
/// `throughput cluster-migration` baseline gate compares.
pub fn migration_sweep_hash(cells: &[MigrationCell]) -> u64 {
    prema_cluster::fold_hashes(cells.iter().map(|cell| cell.hash))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_migration_sweep_is_deterministic_and_actually_migrates() {
        let opts = MigrationSweepOptions::quick();
        let a = run_migration_sweep(&opts);
        let b = run_migration_sweep(&opts);
        assert_eq!(a.len(), opts.severities.len() * 2);
        assert_eq!(migration_sweep_hash(&a), migration_sweep_hash(&b));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.hash, y.hash);
            assert_eq!(x.served, y.served);
        }
        // Both policies answered the same driving: same stream, same
        // degrade windows, different service outcomes.
        let migrate = &a[0];
        let stay = &a[1];
        assert_eq!(migrate.policy, "migrate");
        assert_eq!(stay.policy, "stay");
        assert_eq!(migrate.requests, stay.requests);
        assert_eq!(migrate.degrades, stay.degrades);
        assert!(migrate.degrades > 0, "the process must degrade nodes");
        assert!(migrate.migrations > 0, "stragglers must trigger evacuation");
        assert_eq!(stay.migrations, 0);
        assert!(migrate.degraded_fraction > 0.0);
        assert!(migrate.mean_evacuation_ms > 0.0);
    }

    #[test]
    fn validation_rejects_bad_options() {
        for bad in [
            MigrationSweepOptions {
                nodes: 1,
                ..MigrationSweepOptions::quick()
            },
            MigrationSweepOptions {
                rho: -1.0,
                ..MigrationSweepOptions::quick()
            },
            MigrationSweepOptions {
                severities: vec![],
                ..MigrationSweepOptions::quick()
            },
            MigrationSweepOptions {
                severities: vec![(0, 2)],
                ..MigrationSweepOptions::quick()
            },
            MigrationSweepOptions {
                severities: vec![(2, 2)],
                ..MigrationSweepOptions::quick()
            },
            MigrationSweepOptions {
                degrade_mtbf_ms: 0.0,
                ..MigrationSweepOptions::quick()
            },
            MigrationSweepOptions {
                degrade_window_ms: f64::NAN,
                ..MigrationSweepOptions::quick()
            },
            MigrationSweepOptions {
                sla_multiplier: 0.0,
                ..MigrationSweepOptions::quick()
            },
            MigrationSweepOptions {
                repetitions: 0,
                ..MigrationSweepOptions::quick()
            },
        ] {
            assert!(bad.validate().is_err());
        }
        assert!(MigrationSweepOptions::baseline().validate().is_ok());
    }
}
