//! The cluster-scale co-simulation benchmark: event-heap loop vs the naive
//! stepping reference across node counts.
//!
//! `BENCH_cluster.json` (see [`crate::cluster`]) compares *serving
//! policies* on a small cluster; this sweep instead measures the
//! *co-simulation loop itself* as the cluster grows — the ROADMAP's
//! production-scale axis. For each node count it generates one seeded
//! open-loop stream at a fixed offered load (`rho`, so the request rate
//! scales with the cluster), then runs every closed-loop dispatch variant
//! through **both** drivers — [`OnlineClusterSimulator::run_reference`]
//! (the PR 4 stepping loop: every arrival advances all node sessions and
//! every decision rescans residents, O(events × nodes)) and
//! [`OnlineClusterSimulator::run`] (the event-heap loop: certificates +
//! branch-and-bound, only due nodes and genuine contenders advance) — and
//! records both wall clocks. The two outcomes are asserted bit-identical
//! per cell; the per-cell digest folds into the sweep hash the
//! `throughput cluster-scale --check-baseline` gate compares.
//!
//! The default sweep runs the three *plain* live-dispatch variants on
//! NP-FCFS nodes. Two deliberate choices:
//!
//! * Work stealing and SLA admission are *synchronized* mechanisms — their
//!   semantics pin every node to the decision instants, so both drivers
//!   must advance all sessions and the comparison mostly measures shared
//!   engine time. Their serving behaviour is covered by `BENCH_cluster.json`;
//!   this sweep isolates the loop's scaling, where the drivers actually
//!   differ.
//! * NP-FCFS nodes keep per-node execution on the engine's event-horizon
//!   fast path, so node execution is nearly free and the measurement is
//!   dominated by the co-simulation loop — the thing under test. (The
//!   equivalence property tests still cover every scheduler and mechanism.)
//!
//! Wall clocks take the best of [`ScaleSweepOptions::repetitions`] runs per
//! driver: the minimum is the standard low-noise estimator on a shared
//! host, and the outcome is asserted identical on every repetition.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use npu_sim::NpuConfig;
use prema_cluster::{online_outcome_hash, OnlineClusterSimulator, OnlineOutcome};
use prema_core::SchedulerConfig;
use prema_workload::arrivals::{generate_open_loop, OpenLoopConfig};
use prema_workload::prepare::prepare_workload;

use crate::cluster::{mean_service_ms, offered_rate_per_ms, ClosedLoopVariant};
use crate::suite::{build_predictor, run_seed};

/// Options controlling a cluster-scale sweep.
#[derive(Debug, Clone)]
pub struct ScaleSweepOptions {
    /// The cluster sizes to sweep.
    pub node_counts: Vec<usize>,
    /// Offered load, fixed across node counts (the arrival rate scales as
    /// `rho * nodes / E[S]`).
    pub rho: f64,
    /// RNG seed; per-node-count request streams derive from it.
    pub seed: u64,
    /// Length of each generated arrival window, in milliseconds.
    pub duration_ms: f64,
    /// The closed-loop variants under measurement.
    pub variants: Vec<ClosedLoopVariant>,
    /// The per-node scheduler.
    pub scheduler: SchedulerConfig,
    /// The per-node NPU configuration.
    pub npu: NpuConfig,
    /// Wall-clock repetitions per (cell, driver); the minimum is reported.
    pub repetitions: usize,
    /// Largest node count the O(events × nodes) stepping reference still
    /// runs at. Cells above the cap run the event-heap loop only (their
    /// [`ScaleCell::wall_reference_s`] is `None` and they fold into
    /// [`scale_extended_sweep_hash`] but not [`scale_sweep_hash`]); `0`
    /// makes the whole sweep heap-only. The heap outcome is independent of
    /// whether the reference ran, so capped sweeps keep the same digests.
    pub reference_cap: usize,
}

impl ScaleSweepOptions {
    /// The committed-baseline sweep: 4 / 16 / 64 NP-FCFS nodes at 95 %
    /// offered load, 400 ms windows, the three plain live-dispatch
    /// variants, best-of-3 walls.
    pub fn baseline() -> Self {
        ScaleSweepOptions {
            node_counts: vec![4, 16, 64],
            rho: 0.95,
            seed: 2020,
            duration_ms: 400.0,
            variants: vec![
                ClosedLoopVariant::ShortestQueue,
                ClosedLoopVariant::LeastWork,
                ClosedLoopVariant::Predictive,
            ],
            scheduler: SchedulerConfig::np_fcfs(),
            npu: NpuConfig::paper_default(),
            repetitions: 3,
            reference_cap: 64,
        }
    }

    /// The nightly extended sweep: the baseline grid plus heap-only 256-
    /// and 1024-node levels, appended *after* the baseline levels so the
    /// per-level request streams (seeded by grid position) — and therefore
    /// the baseline cells' digests and the capped sweep hash — are
    /// untouched.
    pub fn extended() -> Self {
        let mut opts = ScaleSweepOptions::baseline();
        opts.node_counts.extend([256, 1024]);
        opts
    }

    /// A reduced sweep for unit tests and quick local runs, covering the
    /// synchronized mechanisms too.
    pub fn quick() -> Self {
        ScaleSweepOptions {
            node_counts: vec![2, 6],
            duration_ms: 80.0,
            variants: vec![
                ClosedLoopVariant::ShortestQueue,
                ClosedLoopVariant::WorkStealing,
                ClosedLoopVariant::SlaAdmission,
            ],
            repetitions: 1,
            ..ScaleSweepOptions::baseline()
        }
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.node_counts.is_empty() || self.node_counts.contains(&0) {
            return Err("node counts must be non-empty and positive".into());
        }
        if !self.rho.is_finite() || self.rho <= 0.0 {
            return Err("rho must be positive and finite".into());
        }
        if !self.duration_ms.is_finite() || self.duration_ms <= 0.0 {
            return Err("duration must be positive and finite".into());
        }
        if self.variants.is_empty() {
            return Err("at least one closed-loop variant is required".into());
        }
        if self.repetitions == 0 {
            return Err("at least one repetition is required".into());
        }
        self.npu.validate()?;
        self.scheduler.validate()?;
        Ok(())
    }
}

/// One cell of the scale sweep: a (node count, variant) pair measured under
/// both drivers on the identical request stream.
#[derive(Debug, Clone)]
pub struct ScaleCell {
    /// Cluster size.
    pub nodes: usize,
    /// The closed-loop variant label.
    pub policy: &'static str,
    /// Number of requests in the stream.
    pub requests: usize,
    /// Requests served (differs from `requests` only under admission).
    pub served: usize,
    /// Requests shed by admission control.
    pub shed: usize,
    /// Work-stealing migrations.
    pub steals: u64,
    /// Total scheduler wakeups across the cluster (identical under both
    /// drivers — part of the bit-identity contract).
    pub events: u64,
    /// Best wall clock of the naive stepping reference, seconds. `None`
    /// when the cell's node count exceeds
    /// [`ScaleSweepOptions::reference_cap`] and only the heap loop ran.
    pub wall_reference_s: Option<f64>,
    /// Best wall clock of the event-heap loop, seconds.
    pub wall_heap_s: f64,
    /// The deterministic outcome digest (identical under both drivers).
    pub hash: u64,
}

impl ScaleCell {
    /// Reference events per second; `None` for heap-only cells.
    pub fn reference_events_per_sec(&self) -> Option<f64> {
        self.wall_reference_s
            .map(|wall| self.events as f64 / wall.max(f64::EPSILON))
    }

    /// Event-heap events per second.
    pub fn heap_events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_heap_s.max(f64::EPSILON)
    }

    /// Wall-clock speedup of the event-heap loop over the reference;
    /// `None` for heap-only cells.
    pub fn speedup(&self) -> Option<f64> {
        self.wall_reference_s
            .map(|wall| wall / self.wall_heap_s.max(f64::EPSILON))
    }
}

/// Aggregate of all cells at one node count.
#[derive(Debug, Clone, Copy)]
pub struct ScaleAggregate {
    /// Cluster size.
    pub nodes: usize,
    /// Total scheduler wakeups over the node count's cells.
    pub events: u64,
    /// Summed reference wall, seconds; `None` at heap-only node counts.
    pub wall_reference_s: Option<f64>,
    /// Summed event-heap wall, seconds.
    pub wall_heap_s: f64,
}

impl ScaleAggregate {
    /// Reference events per second at this node count; `None` when the
    /// node count ran heap-only.
    pub fn reference_events_per_sec(&self) -> Option<f64> {
        self.wall_reference_s
            .map(|wall| self.events as f64 / wall.max(f64::EPSILON))
    }

    /// Event-heap events per second at this node count.
    pub fn heap_events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_heap_s.max(f64::EPSILON)
    }

    /// Aggregate speedup (ratio of the events/sec figures); `None` at
    /// heap-only node counts.
    pub fn speedup(&self) -> Option<f64> {
        self.wall_reference_s
            .map(|wall| wall / self.wall_heap_s.max(f64::EPSILON))
    }
}

fn timed<F: FnMut() -> OnlineOutcome>(mut run: F, repetitions: usize) -> (OnlineOutcome, f64) {
    let mut best = f64::INFINITY;
    let mut outcome: Option<OnlineOutcome> = None;
    for _ in 0..repetitions {
        let start = Instant::now();
        let this = run();
        let wall = start.elapsed().as_secs_f64();
        best = best.min(wall);
        if let Some(previous) = &outcome {
            assert_eq!(previous, &this, "nondeterministic closed-loop run");
        }
        outcome = Some(this);
    }
    (outcome.expect("at least one repetition"), best)
}

/// Runs the scale sweep. Cells are laid out node-count-major in option
/// order; every cell's reference and event-heap outcomes are asserted
/// bit-identical (records, assignments, sheds, steals — and therefore the
/// digest).
///
/// # Panics
///
/// Panics if the options are invalid or if the two drivers ever diverge.
pub fn run_scale_sweep(opts: &ScaleSweepOptions) -> Vec<ScaleCell> {
    if let Err(msg) = opts.validate() {
        panic!("invalid ScaleSweepOptions: {msg}");
    }
    let predictor = build_predictor(&opts.npu, opts.seed);
    let template = OpenLoopConfig::poisson(1.0, opts.duration_ms);
    let service_ms = mean_service_ms(&template.models, &template.batch_sizes, &opts.npu);

    let mut cells = Vec::with_capacity(opts.node_counts.len() * opts.variants.len());
    for (level, &nodes) in opts.node_counts.iter().enumerate() {
        let rate = offered_rate_per_ms(opts.rho, nodes, service_ms);
        let config = OpenLoopConfig::poisson(rate, opts.duration_ms);
        let mut rng = StdRng::seed_from_u64(run_seed(opts.seed, level));
        let spec = generate_open_loop(&config, &mut rng);
        let prepared = prepare_workload(&spec, &opts.npu, Some(&predictor));
        for &variant in &opts.variants {
            let online = OnlineClusterSimulator::new(variant.config(
                nodes,
                opts.scheduler.clone(),
                opts.npu.clone(),
            ));
            let wall_reference_s = (nodes <= opts.reference_cap).then(|| {
                let (reference, wall) =
                    timed(|| online.run_reference(&prepared.tasks), opts.repetitions);
                (reference, wall)
            });
            let (heap, wall_heap_s) = timed(|| online.run(&prepared.tasks), opts.repetitions);
            let wall_reference_s = wall_reference_s.map(|(reference, wall)| {
                assert_eq!(
                    heap, reference,
                    "event-heap loop diverged from the stepping reference at \
                     {nodes} nodes under {variant}"
                );
                wall
            });
            cells.push(ScaleCell {
                nodes,
                policy: variant.label(),
                requests: spec.len(),
                served: heap.served(),
                shed: heap.shed.len(),
                steals: heap.steals,
                events: heap.cluster.scheduler_invocations(),
                wall_reference_s,
                wall_heap_s,
                hash: online_outcome_hash(&heap),
            });
        }
    }
    cells
}

/// Folds the *reference-verified* cell digests (node counts within
/// [`ScaleSweepOptions::reference_cap`]) into the sweep-identity digest the
/// `throughput cluster-scale` baseline gate compares. Heap-only cells are
/// excluded so the digest is stable whether or not a run extends the grid
/// past the cap — the committed baseline value survives nightly's 256- and
/// 1024-node columns.
pub fn scale_sweep_hash(cells: &[ScaleCell]) -> u64 {
    prema_cluster::fold_hashes(
        cells
            .iter()
            .filter(|cell| cell.wall_reference_s.is_some())
            .map(|cell| cell.hash),
    )
}

/// Folds *every* cell digest, heap-only columns included — the identity
/// the nightly extended sweep pins in addition to [`scale_sweep_hash`].
pub fn scale_extended_sweep_hash(cells: &[ScaleCell]) -> u64 {
    prema_cluster::fold_hashes(cells.iter().map(|cell| cell.hash))
}

/// Per-node-count aggregates, in first-appearance order.
pub fn scale_aggregates(cells: &[ScaleCell]) -> Vec<ScaleAggregate> {
    let mut aggregates: Vec<ScaleAggregate> = Vec::new();
    for cell in cells {
        match aggregates.iter_mut().find(|a| a.nodes == cell.nodes) {
            Some(aggregate) => {
                aggregate.events += cell.events;
                if let Some(wall) = cell.wall_reference_s {
                    *aggregate.wall_reference_s.get_or_insert(0.0) += wall;
                }
                aggregate.wall_heap_s += cell.wall_heap_s;
            }
            None => aggregates.push(ScaleAggregate {
                nodes: cell.nodes,
                events: cell.events,
                wall_reference_s: cell.wall_reference_s,
                wall_heap_s: cell.wall_heap_s,
            }),
        }
    }
    aggregates
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scale_sweep_is_deterministic_and_shaped() {
        let opts = ScaleSweepOptions::quick();
        let a = run_scale_sweep(&opts);
        let b = run_scale_sweep(&opts);
        assert_eq!(a.len(), opts.node_counts.len() * opts.variants.len());
        assert_eq!(scale_sweep_hash(&a), scale_sweep_hash(&b));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.hash, y.hash);
            assert_eq!(x.events, y.events);
            assert_eq!(x.served, y.served);
        }
        // One stream per node count, replayed by every variant.
        for level in 0..opts.node_counts.len() {
            let row = &a[level * opts.variants.len()..(level + 1) * opts.variants.len()];
            assert!(row.iter().all(|c| c.requests == row[0].requests));
            assert!(row.iter().all(|c| c.nodes == opts.node_counts[level]));
        }
        // The sla-admit variant actually shed under load, and the steal
        // variant migrated work — the sweep exercises the synchronized
        // mechanisms end to end.
        assert!(a.iter().any(|c| c.steals > 0));
        let aggregates = scale_aggregates(&a);
        assert_eq!(aggregates.len(), opts.node_counts.len());
        for aggregate in aggregates {
            assert!(aggregate.events > 0);
            assert!(aggregate.speedup().expect("within the reference cap") > 0.0);
        }
    }

    /// Heap-only cells (above the reference cap) keep the exact digests a
    /// fully verified sweep produces — the heap outcome cannot depend on
    /// whether the reference ran — while the capped sweep hash folds only
    /// the verified prefix and the extended hash folds everything.
    #[test]
    fn reference_cap_preserves_digests_and_splits_the_hashes() {
        let verified = run_scale_sweep(&ScaleSweepOptions::quick());
        let capped_opts = ScaleSweepOptions {
            reference_cap: 2,
            ..ScaleSweepOptions::quick()
        };
        let capped = run_scale_sweep(&capped_opts);
        assert_eq!(capped.len(), verified.len());
        for (cell, full) in capped.iter().zip(&verified) {
            assert_eq!(cell.hash, full.hash);
            assert_eq!(cell.events, full.events);
            assert_eq!(
                cell.wall_reference_s.is_some(),
                cell.nodes <= capped_opts.reference_cap
            );
            assert_eq!(cell.reference_events_per_sec().is_some(), cell.nodes <= 2);
            assert_eq!(cell.speedup().is_some(), cell.nodes <= 2);
        }
        // The gate digest folds only verified cells; the extended digest
        // folds all of them and matches the uncapped sweep's.
        let verified_prefix: Vec<ScaleCell> = capped
            .iter()
            .filter(|cell| cell.wall_reference_s.is_some())
            .cloned()
            .collect();
        assert!(!verified_prefix.is_empty());
        assert_eq!(
            scale_sweep_hash(&capped),
            scale_extended_sweep_hash(&verified_prefix)
        );
        assert_eq!(
            scale_extended_sweep_hash(&capped),
            scale_extended_sweep_hash(&verified)
        );
        // Heap-only node counts aggregate without a reference wall.
        let aggregates = scale_aggregates(&capped);
        assert!(aggregates
            .iter()
            .any(|aggregate| aggregate.wall_reference_s.is_none()
                && aggregate.heap_events_per_sec() > 0.0));
    }

    #[test]
    fn validation_rejects_bad_options() {
        for bad in [
            ScaleSweepOptions {
                node_counts: vec![],
                ..ScaleSweepOptions::quick()
            },
            ScaleSweepOptions {
                node_counts: vec![0],
                ..ScaleSweepOptions::quick()
            },
            ScaleSweepOptions {
                rho: 0.0,
                ..ScaleSweepOptions::quick()
            },
            ScaleSweepOptions {
                duration_ms: f64::NAN,
                ..ScaleSweepOptions::quick()
            },
            ScaleSweepOptions {
                variants: vec![],
                ..ScaleSweepOptions::quick()
            },
            ScaleSweepOptions {
                repetitions: 0,
                ..ScaleSweepOptions::quick()
            },
        ] {
            assert!(bad.validate().is_err());
        }
        assert!(ScaleSweepOptions::baseline().validate().is_ok());
    }
}
