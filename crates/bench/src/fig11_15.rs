//! Figures 11, 12, 13 and 15: the scheduler-policy comparison experiments.
//!
//! * **Figure 11** — ANTT / fairness / STP of the six non-preemptive
//!   schedulers (FCFS, RRB, HPF, TOKEN, SJF, PREMA).
//! * **Figure 12** — static (always CHECKPOINT) versus dynamic (Algorithm 3)
//!   preemption for HPF, TOKEN, SJF and PREMA, normalized to NP-FCFS.
//! * **Figure 13** — SLA violation rate versus SLA target for nine policies.
//! * **Figure 15** — CHECKPOINT versus KILL sensitivity for the same policy
//!   set as Figure 12.

use prema_core::config::{PolicyKind, PreemptionMode};
use prema_core::{PreemptionMechanism, SchedulerConfig};
use prema_metrics::TableBuilder;

use crate::suite::{run_configs, ConfigResult, SuiteOptions};

/// The four predictor/priority-aware policies compared in Figures 12 and 15.
const PREEMPTIVE_POLICIES: [PolicyKind; 4] = [
    PolicyKind::Hpf,
    PolicyKind::Token,
    PolicyKind::Sjf,
    PolicyKind::Prema,
];

/// The scheduler configurations of Figure 11: every policy, non-preemptive.
pub fn fig11_configs() -> Vec<SchedulerConfig> {
    PolicyKind::ALL
        .iter()
        .map(|&p| SchedulerConfig::named(p, PreemptionMode::NonPreemptive))
        .collect()
}

/// The scheduler configurations of Figure 12: static CHECKPOINT and dynamic
/// preemption for HPF / TOKEN / SJF / PREMA.
pub fn fig12_configs() -> Vec<SchedulerConfig> {
    let mut configs = Vec::new();
    for &policy in &PREEMPTIVE_POLICIES {
        configs.push(SchedulerConfig::named(
            policy,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
        ));
    }
    for &policy in &PREEMPTIVE_POLICIES {
        configs.push(SchedulerConfig::named(policy, PreemptionMode::Dynamic));
    }
    configs
}

/// The nine scheduler configurations of Figure 13.
pub fn fig13_configs() -> Vec<SchedulerConfig> {
    let mut configs = vec![
        SchedulerConfig::np_fcfs(),
        SchedulerConfig::named(PolicyKind::Hpf, PreemptionMode::NonPreemptive),
        SchedulerConfig::named(PolicyKind::Prema, PreemptionMode::NonPreemptive),
    ];
    for &policy in &[PolicyKind::Hpf, PolicyKind::Sjf, PolicyKind::Prema] {
        configs.push(SchedulerConfig::named(
            policy,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
        ));
    }
    for &policy in &[PolicyKind::Hpf, PolicyKind::Sjf, PolicyKind::Prema] {
        configs.push(SchedulerConfig::named(policy, PreemptionMode::Dynamic));
    }
    configs
}

/// The scheduler configurations of Figure 15: KILL and CHECKPOINT under both
/// static and dynamic preemption for HPF / TOKEN / SJF / PREMA.
pub fn fig15_configs() -> Vec<SchedulerConfig> {
    let mut configs = Vec::new();
    for &policy in &PREEMPTIVE_POLICIES {
        configs.push(SchedulerConfig::named(
            policy,
            PreemptionMode::Static(PreemptionMechanism::Kill),
        ));
        configs.push(SchedulerConfig::named(
            policy,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
        ));
    }
    for &policy in &PREEMPTIVE_POLICIES {
        configs.push(SchedulerConfig::named(policy, PreemptionMode::DynamicKill));
        configs.push(SchedulerConfig::named(policy, PreemptionMode::Dynamic));
    }
    configs
}

/// Runs Figure 11 and formats the report.
pub fn figure11(opts: &SuiteOptions) -> (Vec<ConfigResult>, String) {
    let results = run_configs(&fig11_configs(), opts);
    (
        results.clone(),
        format_metric_table(
            "Figure 11: non-preemptive schedulers (normalized to NP-FCFS)",
            &results,
        ),
    )
}

/// Runs Figure 12 and formats the report.
pub fn figure12(opts: &SuiteOptions) -> (Vec<ConfigResult>, String) {
    let results = run_configs(&fig12_configs(), opts);
    (
        results.clone(),
        format_metric_table(
            "Figure 12: static vs dynamic preemption (normalized to NP-FCFS)",
            &results,
        ),
    )
}

/// Runs Figure 13 and formats the SLA violation curves.
pub fn figure13(opts: &SuiteOptions) -> (Vec<ConfigResult>, String) {
    let results = run_configs(&fig13_configs(), opts);
    let mut headers = vec!["SLA target (xIsolated)".to_string()];
    headers.extend(results.iter().map(|r| r.label.clone()));
    let mut table = TableBuilder::new(headers)
        .title("Figure 13: fraction of SLA-violating tasks vs SLA target");
    for n in (2..=20).step_by(2) {
        let mut row = vec![format!("{n}")];
        for result in &results {
            let rate = result.sla.rate_at(n as f64).unwrap_or(0.0);
            row.push(format!("{:.1}%", rate * 100.0));
        }
        table = table.row(row);
    }
    (results, table.build())
}

/// Runs Figure 15 and formats the report.
pub fn figure15(opts: &SuiteOptions) -> (Vec<ConfigResult>, String) {
    let results = run_configs(&fig15_configs(), opts);
    (
        results.clone(),
        format_metric_table(
            "Figure 15: CHECKPOINT vs KILL sensitivity (normalized to NP-FCFS)",
            &results,
        ),
    )
}

/// Formats the ANTT / fairness / STP improvement table shared by Figures 11,
/// 12 and 15.
pub fn format_metric_table(title: &str, results: &[ConfigResult]) -> String {
    let mut table = TableBuilder::new(vec![
        "configuration".into(),
        "ANTT".into(),
        "ANTT imprv".into(),
        "fairness imprv".into(),
        "STP imprv".into(),
        "preemptions/run".into(),
    ])
    .title(title);
    for result in results {
        table = table.row(vec![
            result.label.clone(),
            format!("{:.2}", result.metrics.antt),
            format!("{:.2}x", result.antt_improvement),
            format!("{:.2}x", result.fairness_improvement),
            format!("{:.2}x", result.stp_improvement),
            format!("{:.1}", result.mean_preemptions),
        ]);
    }
    table.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use prema_workload::generator::WorkloadConfig;

    fn tiny_opts() -> SuiteOptions {
        SuiteOptions {
            runs: 1,
            seed: 3,
            workload: WorkloadConfig {
                task_count: 4,
                ..WorkloadConfig::paper_default()
            },
            ..SuiteOptions::paper()
        }
    }

    #[test]
    fn config_sets_have_expected_sizes_and_labels() {
        assert_eq!(fig11_configs().len(), 6);
        assert_eq!(fig12_configs().len(), 8);
        assert_eq!(fig13_configs().len(), 9);
        assert_eq!(fig15_configs().len(), 16);
        assert!(fig11_configs().iter().all(|c| c.label().starts_with("NP-")));
        assert!(fig13_configs().iter().any(|c| c.label() == "Dynamic-PREMA"));
        assert!(fig15_configs()
            .iter()
            .any(|c| c.label() == "Static(KILL)-PREMA"));
    }

    #[test]
    fn figure11_report_mentions_every_policy() {
        let (results, report) = figure11(&tiny_opts());
        assert_eq!(results.len(), 6);
        for policy in PolicyKind::ALL {
            assert!(report.contains(policy.paper_name()), "missing {policy}");
        }
    }

    #[test]
    fn figure13_report_has_sla_rows() {
        let (_, report) = figure13(&tiny_opts());
        assert!(report.contains("SLA"));
        assert!(report.contains('%'));
    }
}
