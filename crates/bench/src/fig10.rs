//! Figure 10: per-layer MAC count versus execution time across every layer of
//! the eight evaluation DNNs — the evidence that a MAC-count proxy is a
//! misleading latency predictor on a systolic array.

use dnn_models::lowering::lower_layer;
use dnn_models::{ModelKind, SeqSpec, ALL_EVAL_MODELS};
use npu_sim::{LayerTiming, NpuConfig};
use prema_metrics::{correlation, TableBuilder};

/// One scatter point of Figure 10.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerPoint {
    /// The model the layer belongs to.
    pub model: ModelKind,
    /// Layer name.
    pub layer: String,
    /// MAC operations of the layer (batch 1).
    pub macs: u64,
    /// Modelled execution time in microseconds.
    pub execution_us: f64,
    /// Effective MAC throughput (MACs per cycle) — low values are the
    /// red-circled underutilized layers.
    pub effective_macs_per_cycle: f64,
}

/// Computes the scatter points for every GEMM-bearing layer of the eight
/// evaluation models at batch 1.
pub fn run(npu: &NpuConfig) -> Vec<LayerPoint> {
    let mut points = Vec::new();
    for &model in &ALL_EVAL_MODELS {
        let seq = SeqSpec::for_model(model, 20);
        let network = model.build(1, seq);
        for layer in network.execution_order() {
            if layer.gemm_dims(1).is_none() {
                continue;
            }
            let work = lower_layer(layer, 1);
            let timing = LayerTiming::model(&work, npu);
            points.push(LayerPoint {
                model,
                layer: layer.name().to_string(),
                macs: layer.macs(1),
                execution_us: npu.cycles_to_micros(timing.total_cycles()),
                effective_macs_per_cycle: timing.effective_macs_per_cycle(),
            });
        }
    }
    points
}

/// Summary of the scatter: the MACs-vs-time correlation and the spread of
/// effective throughput (which is what makes the proxy misleading).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig10Summary {
    /// Pearson correlation between MAC count and execution time.
    pub macs_time_correlation: f64,
    /// Lowest observed effective throughput (MACs/cycle).
    pub min_effective_throughput: f64,
    /// Highest observed effective throughput (MACs/cycle).
    pub max_effective_throughput: f64,
    /// Number of layers measured.
    pub layer_count: usize,
}

/// Summarizes the scatter points.
pub fn summarize(points: &[LayerPoint]) -> Fig10Summary {
    let macs: Vec<f64> = points.iter().map(|p| p.macs as f64).collect();
    let times: Vec<f64> = points.iter().map(|p| p.execution_us).collect();
    Fig10Summary {
        macs_time_correlation: correlation(&macs, &times).unwrap_or(0.0),
        min_effective_throughput: points
            .iter()
            .map(|p| p.effective_macs_per_cycle)
            .fold(f64::INFINITY, f64::min),
        max_effective_throughput: points
            .iter()
            .map(|p| p.effective_macs_per_cycle)
            .fold(0.0, f64::max),
        layer_count: points.len(),
    }
}

/// Formats the Figure 10 report: the most and least efficient layers plus the
/// overall summary.
pub fn report(npu: &NpuConfig) -> (Vec<LayerPoint>, String) {
    let mut points = run(npu);
    let summary = summarize(&points);
    points.sort_by(|a, b| {
        a.effective_macs_per_cycle
            .partial_cmp(&b.effective_macs_per_cycle)
            .expect("throughput is never NaN")
    });
    let mut table = TableBuilder::new(vec![
        "model".into(),
        "layer".into(),
        "MACs".into(),
        "time (us)".into(),
        "MACs/cycle".into(),
    ])
    .title(format!(
        "Figure 10: {} layers, MACs-vs-time correlation {:.2}, effective throughput {:.0}..{:.0} MACs/cycle",
        summary.layer_count,
        summary.macs_time_correlation,
        summary.min_effective_throughput,
        summary.max_effective_throughput,
    ));
    let show: Vec<&LayerPoint> = points
        .iter()
        .take(5)
        .chain(points.iter().rev().take(5))
        .collect();
    for point in show {
        table = table.row(vec![
            point.model.paper_name().to_string(),
            point.layer.clone(),
            point.macs.to_string(),
            format!("{:.1}", point.execution_us),
            format!("{:.0}", point.effective_macs_per_cycle),
        ]);
    }
    (points, table.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn execution_time_is_not_proportional_to_macs() {
        let npu = NpuConfig::paper_default();
        let points = run(&npu);
        assert!(
            points.len() > 100,
            "expected many layers, got {}",
            points.len()
        );
        let summary = summarize(&points);
        // The correlation is far from perfect (this is the point of the
        // figure): the spread in effective throughput spans more than an
        // order of magnitude, so MAC count alone badly mispredicts latency.
        assert!(summary.macs_time_correlation < 0.95);
        assert!(summary.max_effective_throughput > 10.0 * summary.min_effective_throughput);
    }

    #[test]
    fn depthwise_layers_are_among_the_least_efficient() {
        let npu = NpuConfig::paper_default();
        let (points, text) = report(&npu);
        assert!(text.contains("Figure 10"));
        let min_point = points
            .iter()
            .min_by(|a, b| {
                a.effective_macs_per_cycle
                    .partial_cmp(&b.effective_macs_per_cycle)
                    .unwrap()
            })
            .unwrap();
        // The least efficient layer is a MobileNet depthwise or an RNN step,
        // never a large VGG convolution.
        assert_ne!(min_point.model, ModelKind::CnnVggNet);
    }
}
