//! Figures 5 and 6: the effect of the KILL / CHECKPOINT / DRAIN preemption
//! mechanisms on preemption latency, the preempting task's waiting time, and
//! the resulting STP / NTT relative to NP-FCFS (Section IV-D).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use dnn_models::{ModelKind, ALL_EVAL_MODELS};
use npu_sim::NpuConfig;
use prema_core::config::{PolicyKind, PreemptionMode};
use prema_core::{NpuSimulator, PreemptionMechanism, SchedulerConfig, TaskId};
use prema_metrics::TableBuilder;
use prema_workload::microbench::{preemptor_sweep, victim_sweep, PreemptionScenario, BATCH_SIZES};

/// Per-mechanism measurements averaged over one sweep of scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MechanismStats {
    /// Average preemption latency (checkpointing time) in microseconds.
    pub preemption_latency_us: f64,
    /// Average waiting time of the preempting (high-priority) task in
    /// microseconds.
    pub wait_time_us: f64,
    /// Average STP normalized to NP-FCFS.
    pub stp_improvement: f64,
    /// Average NTT improvement of the preempting task over NP-FCFS.
    pub ntt_improvement: f64,
}

/// One x-axis group of Figures 5/6: a model at a batch size, measured for the
/// three mechanisms.
#[derive(Debug, Clone, PartialEq)]
pub struct MechanismRow {
    /// The model on the x-axis.
    pub model: ModelKind,
    /// The batch size on the x-axis.
    pub batch: u64,
    /// KILL / CHECKPOINT / DRAIN results in [`PreemptionMechanism::ALL`] order.
    pub stats: [MechanismStats; 3],
}

fn scheduler_for(mechanism: PreemptionMechanism) -> SchedulerConfig {
    match mechanism {
        PreemptionMechanism::Drain => {
            SchedulerConfig::named(PolicyKind::Hpf, PreemptionMode::NonPreemptive)
        }
        other => SchedulerConfig::named(PolicyKind::Hpf, PreemptionMode::Static(other)),
    }
}

fn measure_scenarios(
    scenarios: &[PreemptionScenario],
    mechanism: PreemptionMechanism,
    npu: &NpuConfig,
) -> MechanismStats {
    let sim = NpuSimulator::new(npu.clone(), scheduler_for(mechanism));
    let baseline = NpuSimulator::new(npu.clone(), SchedulerConfig::np_fcfs());
    let mut stats = MechanismStats::default();
    for scenario in scenarios {
        let prepared = sim.prepare(&scenario.requests());
        let outcome = sim.run(&prepared);
        let base = baseline.run(&prepared);

        let victim = outcome.record(TaskId(0)).expect("victim present");
        let preemptor = outcome.record(TaskId(1)).expect("preemptor present");
        let base_preemptor = base.record(TaskId(1)).expect("preemptor present");

        stats.preemption_latency_us += npu.cycles_to_micros(victim.checkpoint_overhead);
        stats.wait_time_us += npu.cycles_to_micros(preemptor.waiting());
        let stp = outcome.stp();
        let base_stp = base.stp();
        stats.stp_improvement += if base_stp > 0.0 { stp / base_stp } else { 0.0 };
        let ntt = preemptor.ntt();
        stats.ntt_improvement += if ntt > 0.0 {
            base_preemptor.ntt() / ntt
        } else {
            0.0
        };
    }
    let n = scenarios.len().max(1) as f64;
    MechanismStats {
        preemption_latency_us: stats.preemption_latency_us / n,
        wait_time_us: stats.wait_time_us / n,
        stp_improvement: stats.stp_improvement / n,
        ntt_improvement: stats.ntt_improvement / n,
    }
}

/// Runs the Figure 5 sweep (grouped by the *preempted* model and batch size).
pub fn figure5(npu: &NpuConfig, repeats: usize, seed: u64) -> Vec<MechanismRow> {
    run_sweep(npu, repeats, seed, true)
}

/// Runs the Figure 6 sweep (grouped by the *preempting* model and batch size).
pub fn figure6(npu: &NpuConfig, repeats: usize, seed: u64) -> Vec<MechanismRow> {
    run_sweep(npu, repeats, seed, false)
}

fn run_sweep(
    npu: &NpuConfig,
    repeats: usize,
    seed: u64,
    group_by_victim: bool,
) -> Vec<MechanismRow> {
    assert!(repeats > 0, "at least one repeat is required");
    // Draw every group's scenarios from the shared RNG stream first — this
    // keeps the per-seed scenario sequence identical to a fully serial sweep
    // — then measure the groups (3 mechanisms × 2 simulations × repeats
    // each, the expensive part) across all cores.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut groups: Vec<(ModelKind, u64, Vec<PreemptionScenario>)> = Vec::new();
    for &model in &ALL_EVAL_MODELS {
        for &batch in &BATCH_SIZES {
            let scenarios = if group_by_victim {
                victim_sweep(model, batch, repeats, npu, &mut rng)
            } else {
                preemptor_sweep(model, batch, repeats, npu, &mut rng)
            };
            groups.push((model, batch, scenarios));
        }
    }
    groups
        .par_iter()
        .map(|(model, batch, scenarios)| MechanismRow {
            model: *model,
            batch: *batch,
            stats: [
                measure_scenarios(scenarios, PreemptionMechanism::Kill, npu),
                measure_scenarios(scenarios, PreemptionMechanism::Checkpoint, npu),
                measure_scenarios(scenarios, PreemptionMechanism::Drain, npu),
            ],
        })
        .collect()
}

/// Formats the Figure 5 report (preemption latency and waiting time).
pub fn format_figure5(rows: &[MechanismRow]) -> String {
    let mut table = TableBuilder::new(vec![
        "preempted model".into(),
        "batch".into(),
        "KILL lat (us)".into(),
        "CKPT lat (us)".into(),
        "DRAIN lat (us)".into(),
        "KILL wait (us)".into(),
        "CKPT wait (us)".into(),
        "DRAIN wait (us)".into(),
    ])
    .title("Figure 5: preemption latency (a) and preempting task wait time (b)");
    for row in rows {
        table = table.row(vec![
            row.model.paper_name().to_string(),
            format!("b{:02}", row.batch),
            format!("{:.1}", row.stats[0].preemption_latency_us),
            format!("{:.1}", row.stats[1].preemption_latency_us),
            format!("{:.1}", row.stats[2].preemption_latency_us),
            format!("{:.0}", row.stats[0].wait_time_us),
            format!("{:.0}", row.stats[1].wait_time_us),
            format!("{:.0}", row.stats[2].wait_time_us),
        ]);
    }
    table.build()
}

/// Formats the Figure 6 report (STP and NTT improvements over NP-FCFS).
pub fn format_figure6(rows: &[MechanismRow]) -> String {
    let mut table = TableBuilder::new(vec![
        "preempting model".into(),
        "batch".into(),
        "KILL STP".into(),
        "CKPT STP".into(),
        "DRAIN STP".into(),
        "KILL NTT".into(),
        "CKPT NTT".into(),
        "DRAIN NTT".into(),
    ])
    .title("Figure 6: STP (a) and preempting-task NTT (b) improvement over NP-FCFS");
    for row in rows {
        table = table.row(vec![
            row.model.paper_name().to_string(),
            format!("b{:02}", row.batch),
            format!("{:.2}", row.stats[0].stp_improvement),
            format!("{:.2}", row.stats[1].stp_improvement),
            format!("{:.2}", row.stats[2].stp_improvement),
            format!("{:.2}", row.stats[0].ntt_improvement),
            format!("{:.2}", row.stats[1].ntt_improvement),
            format!("{:.2}", row.stats[2].ntt_improvement),
        ]);
    }
    table.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_group_measurement_matches_paper_trends() {
        let npu = NpuConfig::paper_default();
        let mut rng = StdRng::seed_from_u64(5);
        let scenarios = victim_sweep(ModelKind::CnnVggNet, 1, 3, &npu, &mut rng);
        let kill = measure_scenarios(&scenarios, PreemptionMechanism::Kill, &npu);
        let ckpt = measure_scenarios(&scenarios, PreemptionMechanism::Checkpoint, &npu);
        let drain = measure_scenarios(&scenarios, PreemptionMechanism::Drain, &npu);

        // KILL and DRAIN have zero preemption (checkpointing) latency;
        // CHECKPOINT pays microseconds.
        assert_eq!(kill.preemption_latency_us, 0.0);
        assert_eq!(drain.preemption_latency_us, 0.0);
        assert!(ckpt.preemption_latency_us > 0.0 && ckpt.preemption_latency_us < 100.0);

        // DRAIN makes the preempting task wait by far the longest.
        assert!(drain.wait_time_us > ckpt.wait_time_us);
        assert!(drain.wait_time_us > kill.wait_time_us);

        // KILL/CHECKPOINT give the preempting task a better NTT than DRAIN.
        assert!(kill.ntt_improvement >= drain.ntt_improvement);
        assert!(ckpt.ntt_improvement >= drain.ntt_improvement);

        // CHECKPOINT preserves throughput at least as well as KILL.
        assert!(ckpt.stp_improvement >= kill.stp_improvement * 0.99);
    }
}
