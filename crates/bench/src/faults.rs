//! The cluster fault-tolerance benchmark: checkpoint-priced recovery vs
//! restart-from-zero under seeded node crashes.
//!
//! This sweep answers the fault-injection question the serving benches
//! leave open: *what does PREMA's checkpointing actually buy when nodes
//! fail?* For each MTBF level (expressed as a multiple of the mean service
//! time, so the fault pressure is load-relative) it generates one seeded
//! open-loop request stream and one seeded crash/freeze schedule, then
//! serves the identical driving twice — once with
//! [`RecoveryConfig::checkpointed`] (salvaged tasks resume from their last
//! commit point, paying the restore DMA) and once with
//! [`RecoveryConfig::restart_from_zero`] (identical retry/backoff policy,
//! all progress discarded). Both cells run through **both** closed-loop
//! drivers and are asserted bit-identical, every cell asserts exactly-once
//! conservation (served + shed + abandoned == generated), and the per-cell
//! digests fold into the sweep hash the `throughput cluster-faults
//! --check-baseline` gate compares.
//!
//! The headline row is MTBF ≈ 10× the mean service time: frequent enough
//! that most crashes land on started work, rare enough that the cluster
//! still mostly serves — there, checkpoint recovery's p99 turnaround must
//! beat restart-from-zero's (the committed `BENCH_cluster_faults.json`
//! records the margin).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use npu_sim::NpuConfig;
use prema_cluster::{
    online_outcome_hash, ClusterFaultPlan, ClusterMetrics, OnlineClusterConfig,
    OnlineClusterSimulator, OnlineDispatchPolicy, OnlineOutcome, RecoveryConfig,
};
use prema_core::SchedulerConfig;
use prema_workload::arrivals::{generate_open_loop, OpenLoopConfig};
use prema_workload::prepare::prepare_workload;
use prema_workload::FaultProcess;

use crate::cluster::{mean_service_ms, offered_rate_per_ms};
use crate::suite::{build_predictor, run_seed};

/// Options controlling a cluster fault-tolerance sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepOptions {
    /// Cluster size.
    pub nodes: usize,
    /// Offered load (fraction of cluster capacity).
    pub rho: f64,
    /// RNG seed; per-level request streams and fault schedules derive
    /// from it.
    pub seed: u64,
    /// Length of each generated arrival window, in milliseconds.
    pub duration_ms: f64,
    /// The MTBF levels, as multiples of the mean service time.
    pub mtbf_multipliers: Vec<f64>,
    /// Mean fault-window length, in milliseconds.
    pub downtime_ms: f64,
    /// Fraction of faults that freeze (straggle) instead of crashing.
    pub freeze_fraction: f64,
    /// The per-node scheduler.
    pub scheduler: SchedulerConfig,
    /// The per-node NPU configuration.
    pub npu: NpuConfig,
    /// Wall-clock repetitions per (cell, driver); the minimum is reported.
    pub repetitions: usize,
}

impl FaultSweepOptions {
    /// The committed-baseline sweep: 4 PREMA nodes at 75 % offered load,
    /// 400 ms windows, MTBF at 5× / 10× / 20× the mean service time with
    /// 2 ms fault windows, a fifth of them freezes.
    pub fn baseline() -> Self {
        FaultSweepOptions {
            nodes: 4,
            rho: 0.75,
            seed: 2020,
            duration_ms: 400.0,
            mtbf_multipliers: vec![5.0, 10.0, 20.0],
            downtime_ms: 2.0,
            freeze_fraction: 0.2,
            scheduler: SchedulerConfig::paper_default(),
            npu: NpuConfig::paper_default(),
            repetitions: 3,
        }
    }

    /// A reduced sweep for unit tests and quick local runs.
    pub fn quick() -> Self {
        FaultSweepOptions {
            nodes: 2,
            duration_ms: 80.0,
            mtbf_multipliers: vec![10.0],
            repetitions: 1,
            ..FaultSweepOptions::baseline()
        }
    }

    /// Validates the options.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("at least one node is required".into());
        }
        if !self.rho.is_finite() || self.rho <= 0.0 {
            return Err("rho must be positive and finite".into());
        }
        if !self.duration_ms.is_finite() || self.duration_ms <= 0.0 {
            return Err("duration must be positive and finite".into());
        }
        if self.mtbf_multipliers.is_empty()
            || self
                .mtbf_multipliers
                .iter()
                .any(|m| !m.is_finite() || *m <= 0.0)
        {
            return Err("MTBF multipliers must be non-empty, positive and finite".into());
        }
        if !self.downtime_ms.is_finite() || self.downtime_ms <= 0.0 {
            return Err("downtime must be positive and finite".into());
        }
        if !(0.0..=1.0).contains(&self.freeze_fraction) {
            return Err("freeze fraction must be within [0, 1]".into());
        }
        if self.repetitions == 0 {
            return Err("at least one repetition is required".into());
        }
        self.npu.validate()?;
        self.scheduler.validate()?;
        Ok(())
    }
}

/// One cell of the fault sweep: an (MTBF level, recovery policy) pair
/// measured under both drivers on the identical driving.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// The level's MTBF as a multiple of the mean service time.
    pub mtbf_multiplier: f64,
    /// The resulting per-node MTBF, in milliseconds.
    pub mtbf_ms: f64,
    /// The recovery policy label (`checkpoint` or `restart-zero`).
    pub recovery: &'static str,
    /// Number of requests in the stream.
    pub requests: usize,
    /// Requests served to completion.
    pub served: usize,
    /// Requests shed by admission control (zero in this sweep — admission
    /// is off so recovery effects stay isolated).
    pub shed: usize,
    /// Requests abandoned after exhausting the retry budget.
    pub abandoned: usize,
    /// Node crash windows injected.
    pub crashes: u64,
    /// Node freeze windows injected.
    pub freezes: u64,
    /// Salvaged-task re-dispatches performed.
    pub recoveries: u64,
    /// Fraction of node-time the nodes were up.
    pub availability: f64,
    /// Useful served work per unit of provisioned capacity.
    pub goodput: f64,
    /// 99th-percentile turnaround of the served work, milliseconds.
    pub p99_ms: f64,
    /// Average normalized turnaround time of the served work.
    pub antt: f64,
    /// Total scheduler wakeups (identical under both drivers).
    pub events: u64,
    /// Best event-heap wall clock, seconds.
    pub wall_s: f64,
    /// The deterministic outcome digest (identical under both drivers).
    pub hash: u64,
}

impl FaultCell {
    /// Event-heap events per second.
    pub fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_s.max(f64::EPSILON)
    }
}

fn timed<F: FnMut() -> OnlineOutcome>(mut run: F, repetitions: usize) -> (OnlineOutcome, f64) {
    let mut best = f64::INFINITY;
    let mut outcome: Option<OnlineOutcome> = None;
    for _ in 0..repetitions {
        let start = Instant::now();
        let this = run();
        let wall = start.elapsed().as_secs_f64();
        best = best.min(wall);
        if let Some(previous) = &outcome {
            assert_eq!(previous, &this, "nondeterministic faulty closed-loop run");
        }
        outcome = Some(this);
    }
    (outcome.expect("at least one repetition"), best)
}

/// Runs the fault sweep. Cells are laid out level-major, checkpoint before
/// restart-zero; per level both policies answer the *identical* request
/// stream and fault schedule, so the comparison is paired. Every cell's
/// reference and event-heap outcomes are asserted bit-identical, and every
/// cell asserts exactly-once conservation.
///
/// # Panics
///
/// Panics if the options are invalid, if the two drivers ever diverge, or
/// if any request is lost or duplicated.
pub fn run_fault_sweep(opts: &FaultSweepOptions) -> Vec<FaultCell> {
    if let Err(msg) = opts.validate() {
        panic!("invalid FaultSweepOptions: {msg}");
    }
    let predictor = build_predictor(&opts.npu, opts.seed);
    let template = OpenLoopConfig::poisson(1.0, opts.duration_ms);
    let service_ms = mean_service_ms(&template.models, &template.batch_sizes, &opts.npu);
    let rate = offered_rate_per_ms(opts.rho, opts.nodes, service_ms);

    let mut cells = Vec::with_capacity(opts.mtbf_multipliers.len() * 2);
    for (level, &multiplier) in opts.mtbf_multipliers.iter().enumerate() {
        let mtbf_ms = multiplier * service_ms;
        let mut rng = StdRng::seed_from_u64(run_seed(opts.seed, level));
        let spec = generate_open_loop(&OpenLoopConfig::poisson(rate, opts.duration_ms), &mut rng);
        let prepared = prepare_workload(&spec, &opts.npu, Some(&predictor));
        // The fault schedule draws from the same per-level stream, after
        // the arrivals — one driving per level, answered by both policies.
        let schedule =
            FaultProcess::crashes(opts.nodes, mtbf_ms, opts.downtime_ms, opts.duration_ms)
                .with_freeze_fraction(opts.freeze_fraction)
                .generate(&mut rng);

        for (label, recovery) in [
            ("checkpoint", RecoveryConfig::checkpointed()),
            ("restart-zero", RecoveryConfig::restart_from_zero()),
        ] {
            let config = OnlineClusterConfig::new(
                opts.nodes,
                opts.scheduler.clone(),
                OnlineDispatchPolicy::Predictive,
            )
            .with_faults(ClusterFaultPlan::new(schedule.clone()).with_recovery(recovery));
            let online = OnlineClusterSimulator::new(config);
            let (reference, _) = timed(|| online.run_reference(&prepared.tasks), opts.repetitions);
            let (heap, wall_s) = timed(|| online.run(&prepared.tasks), opts.repetitions);
            assert_eq!(
                heap, reference,
                "event-heap loop diverged from the stepping reference at \
                 MTBF {multiplier}x under {label} recovery"
            );
            let mut accounted: Vec<u64> = heap
                .cluster
                .merged_records()
                .iter()
                .map(|r| r.id.0)
                .chain(heap.shed.iter().map(|r| r.id.0))
                .chain(heap.abandoned.iter().map(|r| r.id.0))
                .collect();
            accounted.sort_unstable();
            let mut expected: Vec<u64> = prepared.tasks.iter().map(|t| t.request.id.0).collect();
            expected.sort_unstable();
            assert_eq!(
                accounted, expected,
                "task conservation violated at MTBF {multiplier}x under {label} recovery"
            );
            let metrics = ClusterMetrics::from_online(&heap, &opts.npu);
            cells.push(FaultCell {
                mtbf_multiplier: multiplier,
                mtbf_ms,
                recovery: label,
                requests: prepared.tasks.len(),
                served: heap.served(),
                shed: heap.shed.len(),
                abandoned: heap.abandoned.len(),
                crashes: heap.crashes,
                freezes: heap.freezes,
                recoveries: heap.recoveries,
                availability: metrics.availability,
                goodput: metrics.goodput,
                p99_ms: metrics.p99_ms,
                antt: metrics.antt,
                events: heap.cluster.scheduler_invocations(),
                wall_s,
                hash: online_outcome_hash(&heap),
            });
        }
    }
    cells
}

/// Folds every cell digest into the sweep-identity digest the
/// `throughput cluster-faults` baseline gate compares.
pub fn fault_sweep_hash(cells: &[FaultCell]) -> u64 {
    prema_cluster::fold_hashes(cells.iter().map(|cell| cell.hash))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fault_sweep_is_deterministic_and_actually_faults() {
        let opts = FaultSweepOptions::quick();
        let a = run_fault_sweep(&opts);
        let b = run_fault_sweep(&opts);
        assert_eq!(a.len(), opts.mtbf_multipliers.len() * 2);
        assert_eq!(fault_sweep_hash(&a), fault_sweep_hash(&b));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.hash, y.hash);
            assert_eq!(x.served, y.served);
        }
        // Both policies answered the same driving: same stream, same
        // faults, different service outcomes.
        let checkpoint = &a[0];
        let restart = &a[1];
        assert_eq!(checkpoint.recovery, "checkpoint");
        assert_eq!(restart.recovery, "restart-zero");
        assert_eq!(checkpoint.requests, restart.requests);
        assert_eq!(checkpoint.crashes, restart.crashes);
        assert_eq!(checkpoint.freezes, restart.freezes);
        assert!(checkpoint.crashes > 0, "the process must crash nodes");
        assert!(checkpoint.recoveries > 0, "crashes must trigger recovery");
        assert!(checkpoint.availability < 1.0);
        assert!(checkpoint.goodput > 0.0);
        assert_eq!(checkpoint.shed, 0);
    }

    #[test]
    fn validation_rejects_bad_options() {
        for bad in [
            FaultSweepOptions {
                nodes: 0,
                ..FaultSweepOptions::quick()
            },
            FaultSweepOptions {
                rho: -1.0,
                ..FaultSweepOptions::quick()
            },
            FaultSweepOptions {
                mtbf_multipliers: vec![],
                ..FaultSweepOptions::quick()
            },
            FaultSweepOptions {
                mtbf_multipliers: vec![0.0],
                ..FaultSweepOptions::quick()
            },
            FaultSweepOptions {
                downtime_ms: f64::NAN,
                ..FaultSweepOptions::quick()
            },
            FaultSweepOptions {
                freeze_fraction: 1.5,
                ..FaultSweepOptions::quick()
            },
            FaultSweepOptions {
                repetitions: 0,
                ..FaultSweepOptions::quick()
            },
        ] {
            assert!(bad.validate().is_err());
        }
        assert!(FaultSweepOptions::baseline().validate().is_ok());
    }
}
