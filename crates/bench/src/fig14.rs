//! Figure 14: 95th-percentile tail latency of high-priority inference tasks
//! (batch 1), per model, under Isolated / NP-FCFS / P-SJF / PREMA.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;

use dnn_models::{ModelKind, SeqSpec, ALL_EVAL_MODELS};
use npu_sim::NpuConfig;
use prema_core::config::{PolicyKind, PreemptionMode};
use prema_core::{
    NpuSimulator, PreemptionMechanism, Priority, SchedulerConfig, TaskId, TaskRequest,
};
use prema_metrics::{percentile, TableBuilder};
use prema_workload::generator::{generate_workload, WorkloadConfig};
use prema_workload::prepare::prepare_workload;
use prema_workload::seqlen::{sample_input_len, sample_output_len};

use crate::suite::{build_predictor, run_seed};

/// Tail latency of one model's high-priority requests under the four
/// configurations of Figure 14, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailLatencyRow {
    /// The high-priority model.
    pub model: ModelKind,
    /// Isolated execution latency.
    pub isolated_ms: f64,
    /// 95%-ile latency under NP-FCFS.
    pub np_fcfs_ms: f64,
    /// 95%-ile latency under preemptive SJF (static CHECKPOINT).
    pub p_sjf_ms: f64,
    /// 95%-ile latency under PREMA (dynamic preemption).
    pub prema_ms: f64,
}

/// Runs the Figure 14 experiment: for each model, `runs` workloads are
/// generated in which one high-priority batch-1 instance of that model
/// co-runs with seven random background tasks.
///
/// Every (model, run) cell draws its workload from a deterministically
/// derived seed and is simulated independently, so the whole grid fans out
/// over all cores with results identical to a serial sweep.
pub fn run(npu: &NpuConfig, runs: usize, seed: u64) -> Vec<TailLatencyRow> {
    assert!(runs > 0, "at least one run is required");
    let predictor = build_predictor(npu, seed);
    let configs = [
        SchedulerConfig::np_fcfs(),
        SchedulerConfig::named(
            PolicyKind::Sjf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
        ),
        SchedulerConfig::named(PolicyKind::Prema, PreemptionMode::Dynamic),
    ];

    // One cell per (model, run): the cell's high-priority latency under each
    // configuration plus the isolated latency of its high-priority task.
    let cells: Vec<(usize, usize)> = (0..ALL_EVAL_MODELS.len())
        .flat_map(|m| (0..runs).map(move |run| (m, run)))
        .collect();
    let measured: Vec<(f64, [f64; 3])> = cells
        .par_iter()
        .map(|&(model_idx, run)| {
            let model = ALL_EVAL_MODELS[model_idx];
            let mut rng = StdRng::seed_from_u64(run_seed(run_seed(seed, model_idx), run));
            // Seven random background tasks...
            let background = generate_workload(
                &WorkloadConfig {
                    task_count: 7,
                    ..WorkloadConfig::paper_default()
                },
                &mut rng,
            );
            // ...plus the high-priority batch-1 instance of `model`, which —
            // like every other request in the Section III methodology —
            // arrives at a uniformly random point of the dispatch window.
            let seq = if model.is_rnn() {
                let input_len = sample_input_len(model, &mut rng);
                SeqSpec::new(input_len, sample_output_len(model, input_len, &mut rng))
            } else {
                SeqSpec::none()
            };
            let window = npu.millis_to_cycles(WorkloadConfig::paper_default().dispatch_window_ms);
            let arrival = npu_sim::Cycles::new(rand::Rng::gen_range(&mut rng, 0..window.get()));
            let mut requests = background.requests;
            requests.push(
                TaskRequest::new(TaskId(7), model)
                    .with_batch(1)
                    .with_priority(Priority::High)
                    .with_seq(seq)
                    .with_arrival(arrival),
            );
            let spec = prema_workload::generator::WorkloadSpec { requests };
            let prepared = prepare_workload(&spec, npu, Some(&predictor));
            let isolated_ms = npu.cycles_to_millis(
                prepared
                    .tasks
                    .iter()
                    .find(|t| t.request.id == TaskId(7))
                    .expect("high-priority task present")
                    .isolated_cycles(),
            );

            let mut latencies = [0.0f64; 3];
            for (i, cfg) in configs.iter().enumerate() {
                let outcome = NpuSimulator::new(npu.clone(), cfg.clone()).run(&prepared.tasks);
                let record = outcome.record(TaskId(7)).expect("high-priority task ran");
                latencies[i] = npu.cycles_to_millis(record.turnaround());
            }
            (isolated_ms, latencies)
        })
        .collect();

    ALL_EVAL_MODELS
        .iter()
        .enumerate()
        .map(|(model_idx, &model)| {
            let model_cells = &measured[model_idx * runs..(model_idx + 1) * runs];
            let isolated_sum_ms: f64 = model_cells.iter().map(|(iso, _)| iso).sum();
            let per_config =
                |i: usize| -> Vec<f64> { model_cells.iter().map(|(_, lat)| lat[i]).collect() };
            TailLatencyRow {
                model,
                isolated_ms: isolated_sum_ms / runs as f64,
                np_fcfs_ms: percentile(&per_config(0), 95.0).unwrap_or(0.0),
                p_sjf_ms: percentile(&per_config(1), 95.0).unwrap_or(0.0),
                prema_ms: percentile(&per_config(2), 95.0).unwrap_or(0.0),
            }
        })
        .collect()
}

/// Formats the Figure 14 report.
pub fn report(npu: &NpuConfig, runs: usize, seed: u64) -> (Vec<TailLatencyRow>, String) {
    let rows = run(npu, runs, seed);
    let mut table = TableBuilder::new(vec![
        "model".into(),
        "Isolated (ms)".into(),
        "NP-FCFS p95 (ms)".into(),
        "P-SJF p95 (ms)".into(),
        "PREMA p95 (ms)".into(),
    ])
    .title("Figure 14: 95%-ile tail latency of high-priority inference tasks");
    for row in &rows {
        table = table.row(vec![
            row.model.paper_name().to_string(),
            format!("{:.2}", row.isolated_ms),
            format!("{:.2}", row.np_fcfs_ms),
            format!("{:.2}", row.p_sjf_ms),
            format!("{:.2}", row.prema_ms),
        ]);
    }
    (rows, table.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prema_tail_latency_beats_np_fcfs_for_high_priority_tasks() {
        let npu = NpuConfig::paper_default();
        let rows = run(&npu, 2, 11);
        assert_eq!(rows.len(), 8);
        let mut prema_better = 0;
        for row in &rows {
            assert!(row.isolated_ms > 0.0);
            assert!(row.np_fcfs_ms > 0.0 && row.prema_ms > 0.0);
            if row.prema_ms <= row.np_fcfs_ms {
                prema_better += 1;
            }
        }
        // PREMA should improve (or match) the large majority of models.
        assert!(
            prema_better >= 5,
            "PREMA better on only {prema_better}/8 models"
        );
    }
}
