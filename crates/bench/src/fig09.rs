//! Figure 9: input-length versus output-length characterization of the
//! seq2seq applications (machine translation to German / Korean and speech
//! recognition), and the regression curve the PREMA predictor derives from it.

use dnn_models::ModelKind;
use prema_metrics::TableBuilder;
use prema_workload::seqlen::SeqLenCharacterization;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One x-axis point of a Figure 9 panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeqLenRow {
    /// Input sequence length.
    pub input_len: u64,
    /// Predicted (geometric-mean) output length — the regression value.
    pub predicted_output: u64,
    /// Minimum observed output length.
    pub min_output: u64,
    /// Maximum observed output length.
    pub max_output: u64,
}

/// The models shown in Figure 9 (panels a–d, with sentiment analysis omitted
/// by the paper because it is trivially linear).
pub const FIG9_MODELS: [ModelKind; 3] = [
    ModelKind::RnnTranslation1,
    ModelKind::RnnTranslation2,
    ModelKind::RnnSpeech,
];

/// Runs the characterization for one model with `samples_per_length` profiled
/// inferences per input length.
pub fn run(model: ModelKind, samples_per_length: usize, seed: u64) -> Vec<SeqLenRow> {
    let mut rng = StdRng::seed_from_u64(seed);
    let characterization = SeqLenCharacterization::profile(model, samples_per_length, &mut rng);
    let table = characterization.to_table();
    let (lo, hi) = model.input_len_range();
    (lo..=hi)
        .step_by(5)
        .map(|input_len| {
            let (min_output, max_output) = table.observed_range(input_len).unwrap_or((0, 0));
            SeqLenRow {
                input_len,
                predicted_output: table.predict(input_len),
                min_output,
                max_output,
            }
        })
        .collect()
}

/// Formats the Figure 9 report for all three panels.
pub fn report(samples_per_length: usize, seed: u64) -> String {
    let mut out = String::new();
    for model in FIG9_MODELS {
        let rows = run(model, samples_per_length, seed);
        let mut table = TableBuilder::new(vec![
            "input length".into(),
            "predicted output".into(),
            "min".into(),
            "max".into(),
        ])
        .title(format!(
            "Figure 9: {} output sequence length vs input length",
            model.paper_name()
        ));
        for row in &rows {
            table = table.row(vec![
                row.input_len.to_string(),
                row.predicted_output.to_string(),
                row.min_output.to_string(),
                row.max_output.to_string(),
            ]);
        }
        out.push_str(&table.build());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterization_curves_are_monotone_and_model_specific() {
        for model in FIG9_MODELS {
            let rows = run(model, 40, 7);
            assert!(rows.len() >= 5);
            // The regression curve grows with the input length.
            assert!(rows.last().unwrap().predicted_output > rows.first().unwrap().predicted_output);
            // The observed band brackets the prediction.
            for row in &rows {
                assert!(row.min_output <= row.predicted_output);
                assert!(row.max_output >= row.predicted_output);
            }
        }
        // German outputs run longer than Korean for the same input.
        let de = run(ModelKind::RnnTranslation1, 40, 7);
        let ko = run(ModelKind::RnnTranslation2, 40, 7);
        let last = de.len() - 1;
        assert!(de[last].predicted_output > ko[last].predicted_output);
    }

    #[test]
    fn report_contains_all_three_panels() {
        let text = report(10, 3);
        for model in FIG9_MODELS {
            assert!(text.contains(model.paper_name()));
        }
    }
}
