//! Figure 5 bench: preemption latency and waiting time per mechanism.

use criterion::{criterion_group, criterion_main, Criterion};
use npu_sim::NpuConfig;
use prema_bench::fig05_06;

fn bench(c: &mut Criterion) {
    let npu = NpuConfig::paper_default();
    let rows = fig05_06::figure5(&npu, 1, 2020);
    println!("{}", fig05_06::format_figure5(&rows));
    let mut group = c.benchmark_group("fig05");
    group.sample_size(10);
    group.bench_function("preemption_latency_sweep", |b| {
        b.iter(|| fig05_06::figure5(&npu, 1, 2020))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
