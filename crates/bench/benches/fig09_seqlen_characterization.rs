//! Figure 9 bench: sequence-length characterization and regression tables.

use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::ModelKind;
use prema_bench::fig09;

fn bench(c: &mut Criterion) {
    println!("{}", fig09::report(30, 2020));
    let mut group = c.benchmark_group("fig09");
    group.sample_size(20);
    group.bench_function("translation_characterization", |b| {
        b.iter(|| fig09::run(ModelKind::RnnTranslation1, 30, 2020))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
