//! Figure 13 bench: SLA violation rate versus SLA target for nine policies.

use criterion::{criterion_group, criterion_main, Criterion};
use prema_bench::fig11_15;
use prema_bench::suite::SuiteOptions;

fn bench(c: &mut Criterion) {
    let opts = SuiteOptions::quick().with_runs(2);
    let (_, report) = fig11_15::figure13(&opts);
    println!("{report}");
    let mut group = c.benchmark_group("fig13");
    group.sample_size(10);
    group.bench_function("sla_violation_suite", |b| {
        b.iter(|| fig11_15::figure13(&SuiteOptions::quick().with_runs(1)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
