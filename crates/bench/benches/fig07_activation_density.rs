//! Figure 7 bench: VGGNet per-layer activation density characterization.

use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::ModelKind;
use prema_bench::fig07;

fn bench(c: &mut Criterion) {
    let (_, report) = fig07::report(ModelKind::CnnVggNet, 1000, 2020);
    println!("{report}");
    let mut group = c.benchmark_group("fig07");
    group.sample_size(20);
    group.bench_function("vgg_density_1000_inferences", |b| {
        b.iter(|| fig07::run(ModelKind::CnnVggNet, 1000, 2020))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
