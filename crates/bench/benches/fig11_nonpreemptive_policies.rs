//! Figure 11 bench: ANTT / fairness / STP of the six non-preemptive policies.

use criterion::{criterion_group, criterion_main, Criterion};
use prema_bench::fig11_15;
use prema_bench::suite::SuiteOptions;

fn bench(c: &mut Criterion) {
    let opts = SuiteOptions::quick().with_runs(2);
    let (_, report) = fig11_15::figure11(&opts);
    println!("{report}");
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.bench_function("nonpreemptive_policy_suite", |b| {
        b.iter(|| fig11_15::figure11(&SuiteOptions::quick().with_runs(1)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
