//! Engine throughput bench: scheduler events per second on the paper-default
//! 8-task workload, plus the plan-compilation cache hit path. Tracks the hot
//! loop so future PRs can spot regressions.

use criterion::{criterion_group, criterion_main, Criterion};

use npu_sim::NpuConfig;
use prema_core::plan::plan_cache;
use prema_core::{NpuSimulator, SchedulerConfig};
use prema_workload::generator::{generate_workload, WorkloadConfig};
use prema_workload::prepare::prepare_workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let npu = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(2020);
    let spec = generate_workload(&WorkloadConfig::paper_default(), &mut rng);
    let prepared = prepare_workload(&spec, &npu, None);
    let sim = NpuSimulator::new(npu.clone(), SchedulerConfig::paper_default());

    // Report the per-run event rate once so the bench log doubles as a
    // throughput record.
    let outcome = sim.run(&prepared.tasks);
    println!(
        "paper-default 8-task run: {} scheduler events",
        outcome.scheduler_invocations
    );

    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    group.bench_function("paper_default_8_tasks", |b| {
        b.iter(|| sim.run(&prepared.tasks))
    });
    group.bench_function("prepare_cached", |b| {
        b.iter(|| prepare_workload(&spec, &npu, None))
    });
    group.bench_function("prepare_uncached", |b| {
        b.iter(|| {
            plan_cache::clear();
            prepare_workload(&spec, &npu, None)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
