//! Tables I and II plus the overhead / prediction summaries, exercised as a
//! micro-benchmark of plan compilation and prediction throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use dnn_models::{ModelKind, SeqSpec};
use npu_sim::NpuConfig;
use prema_bench::{overhead, prediction, tables};
use prema_core::plan::ExecutionPlan;
use prema_core::SchedulerConfig;
use prema_predictor::{AnalyticalPredictor, InferenceTimePredictor};

fn bench(c: &mut Criterion) {
    let npu = NpuConfig::paper_default();
    println!("{}", tables::table1(&npu));
    println!("{}", tables::table2(&SchedulerConfig::paper_default()));
    println!("{}", overhead::report(&npu).1);
    println!("{}", prediction::report(&npu, 2, 2020).1);

    let predictor = AnalyticalPredictor::new(npu.clone());
    let mut group = c.benchmark_group("infrastructure");
    group.bench_function("plan_compile_vgg16_batch1", |b| {
        b.iter(|| ExecutionPlan::compile(ModelKind::CnnVggNet, 1, SeqSpec::none(), &npu))
    });
    group.bench_function("analytical_predict_vgg16_batch1", |b| {
        b.iter(|| predictor.predict_cycles(ModelKind::CnnVggNet, 1, 0))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
