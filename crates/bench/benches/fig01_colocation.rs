//! Figure 1 bench: co-location throughput/latency under NP-FCFS.

use criterion::{criterion_group, criterion_main, Criterion};
use npu_sim::NpuConfig;
use prema_bench::fig01;
use prema_workload::colocation::ColocationConfig;

fn bench(c: &mut Criterion) {
    let npu = NpuConfig::paper_default();
    let config = ColocationConfig {
        requests_per_model: 4,
        batch: 1,
        inter_arrival_ms: 0.0,
    };
    let (_, report) = fig01::report(&npu, &config);
    println!("{report}");
    let mut group = c.benchmark_group("fig01");
    group.sample_size(10);
    group.bench_function("colocation_np_fcfs", |b| {
        b.iter(|| fig01::run(&npu, &config))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
