//! Figure 14 bench: 95%-ile tail latency of high-priority inference tasks.

use criterion::{criterion_group, criterion_main, Criterion};
use npu_sim::NpuConfig;
use prema_bench::fig14;

fn bench(c: &mut Criterion) {
    let npu = NpuConfig::paper_default();
    let (_, report) = fig14::report(&npu, 2, 2020);
    println!("{report}");
    let mut group = c.benchmark_group("fig14");
    group.sample_size(10);
    group.bench_function("tail_latency_suite", |b| {
        b.iter(|| fig14::run(&npu, 1, 2020))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
