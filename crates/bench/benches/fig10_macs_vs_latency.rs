//! Figure 10 bench: MAC count versus layer execution time scatter.

use criterion::{criterion_group, criterion_main, Criterion};
use npu_sim::NpuConfig;
use prema_bench::fig10;

fn bench(c: &mut Criterion) {
    let npu = NpuConfig::paper_default();
    let (_, report) = fig10::report(&npu);
    println!("{report}");
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.bench_function("layer_scatter_all_models", |b| b.iter(|| fig10::run(&npu)));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
