//! Figure 6 bench: STP and NTT improvement per preemption mechanism.

use criterion::{criterion_group, criterion_main, Criterion};
use npu_sim::NpuConfig;
use prema_bench::fig05_06;

fn bench(c: &mut Criterion) {
    let npu = NpuConfig::paper_default();
    let rows = fig05_06::figure6(&npu, 1, 2020);
    println!("{}", fig05_06::format_figure6(&rows));
    let mut group = c.benchmark_group("fig06");
    group.sample_size(10);
    group.bench_function("mechanism_stp_ntt_sweep", |b| {
        b.iter(|| fig05_06::figure6(&npu, 1, 2020))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
