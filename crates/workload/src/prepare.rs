//! Turning workload specifications into engine-ready tasks.
//!
//! The scheduler never sees a task's true output sequence length; it works
//! from a predictor estimate computed at dispatch time from statically known
//! information (model, batch size, input length). This module attaches those
//! estimates and compiles the execution plans (which *do* use the true
//! sequence lengths) once, so that the same prepared workload can be replayed
//! under many scheduler configurations.

use dnn_models::{ModelKind, SeqSpec};
use npu_sim::NpuConfig;
use prema_core::{PreparedTask, TaskRequest};
use prema_metrics::TaskOutcome;
use prema_predictor::InferenceTimePredictor;

use crate::generator::WorkloadSpec;

/// The plan-cache keys a workload's tasks will compile under: one
/// `(model, batch, seq)` triple per request, at the request's *actual*
/// sequence lengths (duplicates included; the cache warm pass deduplicates).
///
/// Feeding these to `prema_core::plan::plan_cache::warm` before a grid run
/// pre-compiles every distinct plan exactly once, so the (possibly parallel)
/// prepare phase is all cache hits and never races two first-touch compiles
/// of the same key.
pub fn plan_keys(specs: &[WorkloadSpec]) -> Vec<(ModelKind, u64, SeqSpec)> {
    specs
        .iter()
        .flat_map(|spec| spec.requests.iter())
        .map(|request| (request.model, request.batch, request.seq))
        .collect()
}

/// A workload whose plans have been compiled and whose requests carry
/// predictor estimates.
#[derive(Debug, Clone)]
pub struct PreparedWorkload {
    /// The engine-ready tasks.
    pub tasks: Vec<PreparedTask>,
}

impl PreparedWorkload {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The models present in this workload, in task order.
    pub fn models(&self) -> Vec<ModelKind> {
        self.tasks.iter().map(|t| t.request.model).collect()
    }

    /// The mean relative estimation error of the attached estimates against
    /// the exact plan lengths (the paper reports 1.6 % for its predictor).
    pub fn mean_estimation_error(&self) -> f64 {
        if self.tasks.is_empty() {
            return 0.0;
        }
        self.tasks
            .iter()
            .map(|t| {
                let actual = t.isolated_cycles().get() as f64;
                let estimated = t.estimated_cycles().get() as f64;
                if actual == 0.0 {
                    0.0
                } else {
                    (actual - estimated).abs() / actual
                }
            })
            .sum::<f64>()
            / self.tasks.len() as f64
    }
}

/// Compiles `spec` for `npu` and attaches estimates from `predictor`.
///
/// Pass `None` as the predictor to attach oracle estimates (the exact plan
/// lengths), as used by the Section VI-D comparison.
///
/// Plans come from the process-wide compilation cache
/// (`prema_core::plan::plan_cache`), so replaying the same model / batch /
/// sequence combinations across a suite compiles each distinct plan once.
pub fn prepare_workload(
    spec: &WorkloadSpec,
    npu: &NpuConfig,
    predictor: Option<&dyn InferenceTimePredictor>,
) -> PreparedWorkload {
    prepare_with(spec, npu, predictor, PreparedTask::prepare)
}

/// Like [`prepare_workload`] but compiles every plan from scratch,
/// bypassing the plan cache. Exists for baseline measurements and the
/// cache-correctness regression tests; the compiled timing is identical.
pub fn prepare_workload_uncached(
    spec: &WorkloadSpec,
    npu: &NpuConfig,
    predictor: Option<&dyn InferenceTimePredictor>,
) -> PreparedWorkload {
    prepare_with(spec, npu, predictor, PreparedTask::prepare_uncached)
}

fn prepare_with(
    spec: &WorkloadSpec,
    npu: &NpuConfig,
    predictor: Option<&dyn InferenceTimePredictor>,
    compile: fn(TaskRequest, &NpuConfig) -> PreparedTask,
) -> PreparedWorkload {
    let tasks = spec
        .requests
        .iter()
        .map(|request| {
            let request = match predictor {
                Some(p) => {
                    let estimate =
                        p.predict_cycles(request.model, request.batch, request.seq.input_len);
                    request.with_estimate(estimate)
                }
                None => *request,
            };
            compile(request, npu)
        })
        .collect();
    PreparedWorkload { tasks }
}

/// Converts the engine's per-task records into the metric crate's outcome
/// representation (turnaround and isolated times in cycles, priority weight
/// per Table II).
pub fn outcomes_of(records: &[prema_core::TaskRecord]) -> Vec<TaskOutcome> {
    records
        .iter()
        .map(|r| TaskOutcome {
            isolated_time: r.isolated_cycles.get() as f64,
            turnaround_time: r.turnaround().get() as f64,
            priority_weight: r.priority.weight(),
        })
        .collect()
}

/// Convenience: prepares a raw request list (not generated through
/// [`WorkloadSpec`]) with predictor estimates.
pub fn prepare_requests(
    requests: &[TaskRequest],
    npu: &NpuConfig,
    predictor: Option<&dyn InferenceTimePredictor>,
) -> Vec<PreparedTask> {
    prepare_workload(
        &WorkloadSpec {
            requests: requests.to_vec(),
        },
        npu,
        predictor,
    )
    .tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_workload, WorkloadConfig};
    use prema_core::{NpuSimulator, SchedulerConfig};
    use prema_metrics::MultiTaskMetrics;
    use prema_predictor::AnalyticalPredictor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn npu() -> NpuConfig {
        NpuConfig::paper_default()
    }

    fn spec() -> WorkloadSpec {
        let mut rng = StdRng::seed_from_u64(42);
        generate_workload(&WorkloadConfig::paper_default(), &mut rng)
    }

    #[test]
    fn oracle_preparation_has_zero_estimation_error() {
        let prepared = prepare_workload(&spec(), &npu(), None);
        assert_eq!(prepared.len(), 8);
        assert!(!prepared.is_empty());
        assert_eq!(prepared.mean_estimation_error(), 0.0);
    }

    #[test]
    fn analytical_preparation_has_small_estimation_error() {
        let predictor = AnalyticalPredictor::new(npu());
        let prepared = prepare_workload(&spec(), &npu(), Some(&predictor));
        let error = prepared.mean_estimation_error();
        // The paper reports 1.6 % average error; our analytical model ignores
        // vector-unit work and sequence-length noise, so allow a wider but
        // still small band.
        assert!(error > 0.0 && error < 0.25, "estimation error {error}");
    }

    #[test]
    fn prepared_workload_runs_end_to_end_with_metrics() {
        let predictor = AnalyticalPredictor::new(npu());
        let prepared = prepare_workload(&spec(), &npu(), Some(&predictor));
        let sim = NpuSimulator::new(npu(), SchedulerConfig::paper_default());
        let outcome = sim.run(&prepared.tasks);
        let outcomes = outcomes_of(&outcome.records);
        let metrics = MultiTaskMetrics::from_outcomes(&outcomes);
        assert_eq!(metrics.task_count, 8);
        assert!(metrics.antt >= 1.0);
        assert!(metrics.stp > 0.0 && metrics.stp <= 8.0);
        assert!(metrics.fairness > 0.0 && metrics.fairness <= 1.0);
    }

    #[test]
    fn models_accessor_matches_spec() {
        let s = spec();
        let prepared = prepare_workload(&s, &npu(), None);
        let expected: Vec<ModelKind> = s.requests.iter().map(|r| r.model).collect();
        assert_eq!(prepared.models(), expected);
    }

    #[test]
    fn prepare_requests_convenience_matches_workload_path() {
        let s = spec();
        let a = prepare_workload(&s, &npu(), None);
        let b = prepare_requests(&s.requests, &npu(), None);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.tasks.iter().zip(&b) {
            assert_eq!(x.request, y.request);
            assert_eq!(x.isolated_cycles(), y.isolated_cycles());
        }
    }
}
