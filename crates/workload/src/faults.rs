//! Seeded node-fault processes for the fault-tolerant cluster layer.
//!
//! A serving cluster's reliability questions — what does a crash cost, how
//! much progress does checkpoint-priced recovery preserve, how far do
//! stragglers drag the tail — need fault *schedules* that are as
//! reproducible as the arrival streams they are driven against. This module
//! is the fault-side sibling of [`crate::arrivals`]: a [`FaultProcess`]
//! draws per-node alternating up-time / fault-window renewals from a seeded
//! RNG and materializes them as a [`FaultSchedule`] — a time-sorted stream
//! of node-scoped [`NodeFault`] events the cluster loops merge into their
//! global event timeline.
//!
//! Three fault kinds are modeled:
//!
//! * [`FaultKind::Crash`] — the node loses all non-checkpointed progress at
//!   the window's start and is down (no execution, no dispatch) until the
//!   window's end, when it recovers empty.
//! * [`FaultKind::Freeze`] — a straggler window: the node freezes in place
//!   (resident tasks keep their state but make no progress) and resumes
//!   where it left off at the window's end.
//! * [`FaultKind::Degrade`] — a soft straggler window: the node keeps
//!   running but its clock is stretched to the rational fraction
//!   `speed_num / speed_den` of nominal (thermal throttling, contention).
//!
//! Up-times are exponential with mean `mtbf_ms`; fault windows are
//! exponential with mean `mean_downtime_ms`; one uniform draw per window
//! picks the kind (freeze below `freeze_fraction`, degrade in the next
//! `degrade_fraction`, crash otherwise). All sampling is a pure function of
//! the seeded RNG — node `k`'s renewal chain is drawn before node `k+1`'s —
//! so a sweep replaying the same seed sees a bit-identical schedule.
//!
//! # Window composition and precedence
//!
//! Windows on one node must be pairwise disjoint **regardless of kind**: a
//! node is up, crashed, frozen, or degraded — never two at once. There is
//! deliberately no nesting (no "crash inside a degrade window"); a crash
//! that interrupts a degraded phase is expressed by *splitting* the degrade
//! window around the crash. [`FaultSchedule::validate`] rejects same-kind
//! overlap with [`FaultScheduleError::OverlappingWindows`] and mixed-kind
//! overlap with the dedicated
//! [`FaultScheduleError::MixedKindOverlap`], so the sequential-composition
//! rule is explicit rather than implicit.
//!
//! # Link faults
//!
//! The interconnect is its own fault domain: a [`LinkFault`] window takes
//! one *directed* link down ([`LinkFaultKind::Down`]) or throttles its
//! bandwidth ([`LinkFaultKind::Degraded`]) for the window. Link windows
//! ride in the same [`FaultSchedule`] as node windows (the `links` field)
//! and obey the same sequential-composition rule per directed link. A
//! [`LinkFaultProcess`] draws per-link renewal chains exactly like the node
//! process, and [`LinkFault::partition`] materializes a network partition —
//! every cross link between two node groups down, both directions, for one
//! window.
//!
//! # The shared fault-domain error
//!
//! [`FaultDomainError`] is the one typed error every fault-domain validator
//! returns: [`FaultSchedule::validate`] wraps schedule violations
//! ([`FaultScheduleError`]), and the cluster crate's interconnect
//! configuration wraps fabric violations ([`InterconnectError`]), so CLI
//! front-ends can match on one enum instead of threading strings.

use rand::Rng;
use serde::{Deserialize, Serialize};

use npu_sim::{Cycles, NpuConfig};

/// Floor on sampled exponential gaps, in milliseconds (see
/// [`crate::arrivals`]'s identically named constant).
const MIN_GAP_MS: f64 = 1e-9;

/// What a fault window does to the node it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node crashes: resident tasks are salvaged at their last
    /// checkpoint boundary (non-checkpointed progress is lost) and the node
    /// is down for the window.
    Crash,
    /// The node freezes (straggler window): resident tasks stay in place
    /// but make no progress until the window ends.
    Freeze,
    /// The node degrades (soft straggler window): it keeps executing, but
    /// its clock runs at `speed_num / speed_den` of nominal speed until the
    /// window ends. Slowdown only: `0 < speed_num <= speed_den`.
    Degrade {
        /// Numerator of the degraded speed fraction.
        speed_num: u32,
        /// Denominator of the degraded speed fraction.
        speed_den: u32,
    },
}

impl FaultKind {
    /// A short stable label for reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Freeze => "freeze",
            FaultKind::Degrade { .. } => "degrade",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One node-scoped fault window on the cluster's global timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeFault {
    /// The node the fault strikes.
    pub node: usize,
    /// When the fault begins (global cycles).
    pub start: Cycles,
    /// When the node recovers (global cycles); strictly after `start`.
    pub end: Cycles,
    /// Crash or freeze.
    pub kind: FaultKind,
}

impl NodeFault {
    /// The window's length in cycles.
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }
}

/// What a link-fault window does to the directed link it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkFaultKind {
    /// The link is down: no transfer can start on it, and a transfer in
    /// flight when the window opens is lost (the custody layer redirects
    /// it).
    Down,
    /// The link's bandwidth is throttled to `bandwidth_num /
    /// bandwidth_den` of nominal for the window. Slowdown only:
    /// `0 < bandwidth_num <= bandwidth_den`. Transfers launched inside the
    /// window are priced at the throttled rate.
    Degraded {
        /// Numerator of the degraded bandwidth fraction.
        bandwidth_num: u32,
        /// Denominator of the degraded bandwidth fraction.
        bandwidth_den: u32,
    },
}

impl LinkFaultKind {
    /// A short stable label for reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            LinkFaultKind::Down => "link-down",
            LinkFaultKind::Degraded { .. } => "link-degraded",
        }
    }
}

impl std::fmt::Display for LinkFaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One fault window on a *directed* interconnect link. A symmetric outage
/// is two windows, one per direction; a partition is the full cross
/// product (see [`LinkFault::partition`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkFault {
    /// The sending side of the directed link.
    pub from: usize,
    /// The receiving side of the directed link.
    pub to: usize,
    /// When the window begins (global cycles).
    pub start: Cycles,
    /// When the link recovers (global cycles); strictly after `start`.
    pub end: Cycles,
    /// Down or degraded bandwidth.
    pub kind: LinkFaultKind,
}

impl LinkFault {
    /// The window's length in cycles.
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }

    /// A network partition: every directed link between the `left` and
    /// `right` node groups is down for `[start, end)`, both directions.
    /// Links *within* each group stay up.
    ///
    /// # Panics
    ///
    /// Panics if the groups share a node, either group is empty, or the
    /// window is empty.
    pub fn partition(
        left: &[usize],
        right: &[usize],
        start: Cycles,
        end: Cycles,
    ) -> Vec<LinkFault> {
        assert!(
            !left.is_empty() && !right.is_empty(),
            "a partition needs two non-empty groups"
        );
        assert!(end > start, "a partition window must have positive length");
        assert!(
            left.iter().all(|node| !right.contains(node)),
            "partition groups must be disjoint"
        );
        let mut links = Vec::with_capacity(left.len() * right.len() * 2);
        for &a in left {
            for &b in right {
                for (from, to) in [(a, b), (b, a)] {
                    links.push(LinkFault {
                        from,
                        to,
                        start,
                        end,
                        kind: LinkFaultKind::Down,
                    });
                }
            }
        }
        links.sort_by_key(|l| (l.start, l.from, l.to));
        links
    }
}

/// A violation of the [`FaultSchedule`] invariants.
///
/// Overlap on one node is split into two variants so that mixed-kind
/// composition mistakes (a crash window nested inside a degrade window,
/// say) surface with a message that names the rule being broken: windows
/// compose *sequentially*, never by nesting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultScheduleError {
    /// Events are not sorted by `(start, node)`.
    Unsorted,
    /// A window has `end <= start`.
    EmptyWindow {
        /// Index of the offending event in the schedule.
        index: usize,
        /// Node the window names.
        node: usize,
    },
    /// A degrade window names an invalid speed fraction (`speed_num` must
    /// satisfy `0 < speed_num <= speed_den`).
    InvalidDegradeSpeed {
        /// Index of the offending event in the schedule.
        index: usize,
        /// Node the window names.
        node: usize,
    },
    /// Two windows of the *same* kind overlap on one node.
    OverlappingWindows {
        /// Node with the overlapping pair.
        node: usize,
    },
    /// Two windows of *different* kinds overlap on one node — nesting (for
    /// example crash-inside-degrade) is not a supported composition; split
    /// the outer window instead.
    MixedKindOverlap {
        /// Node with the overlapping pair.
        node: usize,
    },
    /// Link windows are not sorted by `(start, from, to)`.
    LinksUnsorted,
    /// A link window has `end <= start`.
    EmptyLinkWindow {
        /// Index of the offending link window.
        index: usize,
        /// Sending side of the link it names.
        from: usize,
        /// Receiving side of the link it names.
        to: usize,
    },
    /// A link window names a node's link to itself — local handoffs never
    /// cross the fabric, so a self-link cannot fault.
    SelfLink {
        /// Index of the offending link window.
        index: usize,
        /// The node named on both sides.
        node: usize,
    },
    /// A degraded-bandwidth window names an invalid fraction
    /// (`bandwidth_num` must satisfy `0 < bandwidth_num <= bandwidth_den`).
    InvalidBandwidthScale {
        /// Index of the offending link window.
        index: usize,
        /// Sending side of the link it names.
        from: usize,
        /// Receiving side of the link it names.
        to: usize,
    },
    /// Two windows overlap on one directed link — like node windows, link
    /// windows compose sequentially, never by nesting.
    OverlappingLinkWindows {
        /// Sending side of the link with the overlapping pair.
        from: usize,
        /// Receiving side of the link with the overlapping pair.
        to: usize,
    },
}

impl std::fmt::Display for FaultScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultScheduleError::Unsorted => f.write_str("events must be sorted by (start, node)"),
            FaultScheduleError::EmptyWindow { index, node } => {
                write!(f, "event {index}: fault window on node {node} is empty")
            }
            FaultScheduleError::InvalidDegradeSpeed { index, node } => write!(
                f,
                "event {index}: degrade window on node {node} needs 0 < speed_num <= speed_den"
            ),
            FaultScheduleError::OverlappingWindows { node } => {
                write!(f, "node {node} has overlapping fault windows")
            }
            FaultScheduleError::MixedKindOverlap { node } => write!(
                f,
                "node {node} has overlapping fault windows of different kinds; \
                 windows compose sequentially — split the outer window instead of nesting"
            ),
            FaultScheduleError::LinksUnsorted => {
                f.write_str("link windows must be sorted by (start, from, to)")
            }
            FaultScheduleError::EmptyLinkWindow { index, from, to } => {
                write!(f, "link window {index}: window on {from}->{to} is empty")
            }
            FaultScheduleError::SelfLink { index, node } => {
                write!(f, "link window {index}: node {node} has no link to itself")
            }
            FaultScheduleError::InvalidBandwidthScale { index, from, to } => write!(
                f,
                "link window {index}: degraded window on {from}->{to} needs \
                 0 < bandwidth_num <= bandwidth_den"
            ),
            FaultScheduleError::OverlappingLinkWindows { from, to } => {
                write!(f, "link {from}->{to} has overlapping fault windows")
            }
        }
    }
}

impl std::error::Error for FaultScheduleError {}

/// A violation of the interconnect fabric configuration (the cluster
/// crate's `InterconnectConfig`). Defined here, next to the schedule
/// errors, so the whole fault domain shares one typed error vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterconnectError {
    /// `bytes_per_cycle` is zero — nothing could ever transfer.
    ZeroBandwidth,
    /// `latency_cycles` is zero — a transfer would deliver at its own
    /// decision instant, creating a same-instant event cycle.
    ZeroLatency,
}

impl std::fmt::Display for InterconnectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InterconnectError::ZeroBandwidth => {
                f.write_str("interconnect bandwidth (bytes per cycle) must be positive")
            }
            InterconnectError::ZeroLatency => f.write_str(
                "interconnect latency must be positive (a zero-latency transfer \
                 would deliver at its own decision instant)",
            ),
        }
    }
}

impl std::error::Error for InterconnectError {}

/// The shared typed validation error for the cluster's fault domain: one
/// enum covering the fault schedule (node and link windows) and the
/// interconnect fabric, so validators and CLI front-ends match on types
/// instead of strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultDomainError {
    /// The node- or link-fault schedule violates its invariants.
    Schedule(FaultScheduleError),
    /// The interconnect fabric configuration is invalid.
    Interconnect(InterconnectError),
}

impl std::fmt::Display for FaultDomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultDomainError::Schedule(err) => write!(f, "fault schedule: {err}"),
            FaultDomainError::Interconnect(err) => write!(f, "interconnect: {err}"),
        }
    }
}

impl std::error::Error for FaultDomainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FaultDomainError::Schedule(err) => Some(err),
            FaultDomainError::Interconnect(err) => Some(err),
        }
    }
}

impl From<FaultScheduleError> for FaultDomainError {
    fn from(err: FaultScheduleError) -> Self {
        FaultDomainError::Schedule(err)
    }
}

impl From<InterconnectError> for FaultDomainError {
    fn from(err: InterconnectError) -> Self {
        FaultDomainError::Interconnect(err)
    }
}

/// A deterministic, time-sorted schedule of node fault windows.
///
/// Invariants (enforced by the generators and checked by
/// [`FaultSchedule::validate`]): events are sorted by `(start, node)`,
/// every window has positive length, degrade windows carry a valid speed
/// fraction, and windows on the *same* node do not overlap — a node is
/// either up, crashed, frozen, or degraded, never two at once. See the
/// module docs for the sequential-composition precedence rule.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The node fault windows, sorted by `(start, node)`.
    pub events: Vec<NodeFault>,
    /// The directed-link fault windows, sorted by `(start, from, to)`.
    /// Empty for a perfect fabric — every pre-link schedule composes
    /// unchanged.
    pub links: Vec<LinkFault>,
}

impl FaultSchedule {
    /// A schedule with no faults (the degenerate fault-free driving).
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Builds a schedule from explicit windows, sorting them into canonical
    /// `(start, node)` order. The link schedule is empty; compose link
    /// windows with [`FaultSchedule::with_links`].
    ///
    /// # Panics
    ///
    /// Panics if the windows violate the schedule invariants (empty
    /// windows, or overlapping windows on one node).
    pub fn from_events(mut events: Vec<NodeFault>) -> Self {
        events.sort_by_key(|e| (e.start, e.node));
        let schedule = FaultSchedule {
            events,
            links: Vec::new(),
        };
        if let Err(msg) = schedule.validate() {
            panic!("invalid FaultSchedule: {msg}");
        }
        schedule
    }

    /// Replaces the link-fault windows, sorting them into canonical
    /// `(start, from, to)` order. Node and link windows are independent
    /// fault domains, so any valid link set composes with any valid node
    /// set.
    ///
    /// # Panics
    ///
    /// Panics if the link windows violate the schedule invariants (empty
    /// or self-link windows, invalid bandwidth scales, or overlapping
    /// windows on one directed link).
    pub fn with_links(mut self, mut links: Vec<LinkFault>) -> Self {
        links.sort_by_key(|l| (l.start, l.from, l.to));
        self.links = links;
        if let Err(msg) = self.validate() {
            panic!("invalid FaultSchedule: {msg}");
        }
        self
    }

    /// Whether the schedule contains no fault windows of either domain.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.links.is_empty()
    }

    /// Number of node fault windows.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Validates the schedule invariants over both fault domains.
    ///
    /// # Errors
    ///
    /// Returns the first violation found, wrapped in the shared
    /// [`FaultDomainError`]. Mixed-kind overlap on one node reports
    /// [`FaultScheduleError::MixedKindOverlap`] so the no-nesting
    /// precedence rule (see the module docs) is named explicitly; link
    /// windows are checked per directed link with the same
    /// sequential-composition rule.
    pub fn validate(&self) -> Result<(), FaultDomainError> {
        for pair in self.events.windows(2) {
            if (pair[0].start, pair[0].node) > (pair[1].start, pair[1].node) {
                return Err(FaultScheduleError::Unsorted.into());
            }
        }
        for (i, event) in self.events.iter().enumerate() {
            if event.end <= event.start {
                return Err(FaultScheduleError::EmptyWindow {
                    index: i,
                    node: event.node,
                }
                .into());
            }
            if let FaultKind::Degrade {
                speed_num,
                speed_den,
            } = event.kind
            {
                if speed_num == 0 || speed_num > speed_den {
                    return Err(FaultScheduleError::InvalidDegradeSpeed {
                        index: i,
                        node: event.node,
                    }
                    .into());
                }
            }
            for later in &self.events[i + 1..] {
                if later.node == event.node && later.start < event.end {
                    return Err(if later.kind == event.kind {
                        FaultScheduleError::OverlappingWindows { node: event.node }.into()
                    } else {
                        FaultScheduleError::MixedKindOverlap { node: event.node }.into()
                    });
                }
            }
        }
        for pair in self.links.windows(2) {
            if (pair[0].start, pair[0].from, pair[0].to) > (pair[1].start, pair[1].from, pair[1].to)
            {
                return Err(FaultScheduleError::LinksUnsorted.into());
            }
        }
        for (i, link) in self.links.iter().enumerate() {
            if link.from == link.to {
                return Err(FaultScheduleError::SelfLink {
                    index: i,
                    node: link.from,
                }
                .into());
            }
            if link.end <= link.start {
                return Err(FaultScheduleError::EmptyLinkWindow {
                    index: i,
                    from: link.from,
                    to: link.to,
                }
                .into());
            }
            if let LinkFaultKind::Degraded {
                bandwidth_num,
                bandwidth_den,
            } = link.kind
            {
                if bandwidth_num == 0 || bandwidth_num > bandwidth_den {
                    return Err(FaultScheduleError::InvalidBandwidthScale {
                        index: i,
                        from: link.from,
                        to: link.to,
                    }
                    .into());
                }
            }
            for later in &self.links[i + 1..] {
                if later.from == link.from && later.to == link.to && later.start < link.end {
                    return Err(FaultScheduleError::OverlappingLinkWindows {
                        from: link.from,
                        to: link.to,
                    }
                    .into());
                }
            }
        }
        Ok(())
    }

    /// Total down/frozen cycles per node over `nodes` nodes (nodes beyond
    /// the schedule's highest-numbered faulty node report zero).
    pub fn downtime_per_node(&self, nodes: usize) -> Vec<Cycles> {
        let mut downtime = vec![Cycles::ZERO; nodes];
        for event in &self.events {
            if event.node < nodes {
                downtime[event.node] += event.duration();
            }
        }
        downtime
    }
}

/// A seeded renewal fault process: the generator of [`FaultSchedule`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProcess {
    /// Number of nodes the process covers (faults strike nodes `0..nodes`).
    pub nodes: usize,
    /// Mean up-time between consecutive fault windows on one node, in
    /// milliseconds (the node-level MTBF).
    pub mtbf_ms: f64,
    /// Mean length of one fault window, in milliseconds.
    pub mean_downtime_ms: f64,
    /// Fraction of fault windows that are freezes instead of crashes, in
    /// `[0, 1]`.
    pub freeze_fraction: f64,
    /// Fraction of fault windows that are degrade (throttle) windows, in
    /// `[0, 1]`; `freeze_fraction + degrade_fraction` must not exceed 1.
    pub degrade_fraction: f64,
    /// Numerator of the degraded speed fraction drawn for degrade windows.
    pub degrade_speed_num: u32,
    /// Denominator of the degraded speed fraction drawn for degrade
    /// windows; `0 < degrade_speed_num <= degrade_speed_den`.
    pub degrade_speed_den: u32,
    /// Faults start inside `[0, duration_ms)`; a window that starts inside
    /// the horizon may end past it.
    pub duration_ms: f64,
}

impl FaultProcess {
    /// A crash-only process — the configuration the recovery-policy sweep
    /// drives.
    pub fn crashes(nodes: usize, mtbf_ms: f64, mean_downtime_ms: f64, duration_ms: f64) -> Self {
        FaultProcess {
            nodes,
            mtbf_ms,
            mean_downtime_ms,
            freeze_fraction: 0.0,
            degrade_fraction: 0.0,
            degrade_speed_num: 1,
            degrade_speed_den: 2,
            duration_ms,
        }
    }

    /// Sets the freeze fraction, keeping the rest of the process.
    pub fn with_freeze_fraction(mut self, freeze_fraction: f64) -> Self {
        self.freeze_fraction = freeze_fraction;
        self
    }

    /// Sets the degrade fraction and the degraded speed `num / den` drawn
    /// for those windows, keeping the rest of the process.
    pub fn with_degradation(mut self, degrade_fraction: f64, num: u32, den: u32) -> Self {
        self.degrade_fraction = degrade_fraction;
        self.degrade_speed_num = num;
        self.degrade_speed_den = den;
        self
    }

    /// Validates the process parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("at least one node is required".into());
        }
        let positive = |value: f64, what: &str| -> Result<(), String> {
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("{what} must be positive and finite"));
            }
            Ok(())
        };
        positive(self.mtbf_ms, "MTBF")?;
        positive(self.mean_downtime_ms, "mean downtime")?;
        positive(self.duration_ms, "duration")?;
        if !self.freeze_fraction.is_finite() || !(0.0..=1.0).contains(&self.freeze_fraction) {
            return Err("freeze fraction must be within [0, 1]".into());
        }
        if !self.degrade_fraction.is_finite() || !(0.0..=1.0).contains(&self.degrade_fraction) {
            return Err("degrade fraction must be within [0, 1]".into());
        }
        if self.freeze_fraction + self.degrade_fraction > 1.0 {
            return Err("freeze and degrade fractions must sum to at most 1".into());
        }
        if self.degrade_speed_num == 0 || self.degrade_speed_num > self.degrade_speed_den {
            return Err("degrade speed needs 0 < num <= den (slowdown only)".into());
        }
        Ok(())
    }

    /// Samples one fault schedule from the seeded RNG.
    ///
    /// Per node, in node order, one sequential renewal chain: up-time ~
    /// Exp(`mtbf_ms`), then a window ~ Exp(`mean_downtime_ms`) whose kind
    /// is picked by one uniform draw (freeze below `freeze_fraction`,
    /// degrade in the next `degrade_fraction`, crash otherwise — so streams
    /// with `degrade_fraction == 0` are bit-identical to pre-degrade ones),
    /// repeating until the next
    /// window would start at or past `duration_ms`. Times convert to cycles
    /// on the Table I timeline (like the arrival streams), so schedules are
    /// reproducible independent of the simulated NPU configuration.
    ///
    /// # Panics
    ///
    /// Panics if the process parameters are invalid.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> FaultSchedule {
        if let Err(msg) = self.validate() {
            panic!("invalid FaultProcess: {msg}");
        }
        let timeline = NpuConfig::paper_default();
        let mut events = Vec::new();
        for node in 0..self.nodes {
            let mut t_ms = 0.0;
            loop {
                t_ms += exp_sample(self.mtbf_ms, rng);
                if t_ms >= self.duration_ms {
                    break;
                }
                let window_ms = exp_sample(self.mean_downtime_ms, rng);
                let u: f64 = rng.gen();
                let kind = if u < self.freeze_fraction {
                    FaultKind::Freeze
                } else if u < self.freeze_fraction + self.degrade_fraction {
                    FaultKind::Degrade {
                        speed_num: self.degrade_speed_num,
                        speed_den: self.degrade_speed_den,
                    }
                } else {
                    FaultKind::Crash
                };
                let start = timeline.millis_to_cycles(t_ms);
                // A window shorter than one cycle still occupies one: the
                // schedule invariant requires strictly positive windows.
                let end = timeline.millis_to_cycles(t_ms + window_ms).max(start) + Cycles::new(1);
                events.push(NodeFault {
                    node,
                    start,
                    end,
                    kind,
                });
                t_ms += window_ms;
            }
        }
        FaultSchedule::from_events(events)
    }

    /// The expected number of fault windows over the whole cluster: each
    /// node renews roughly every `mtbf + downtime` milliseconds.
    pub fn expected_faults(&self) -> f64 {
        self.nodes as f64 * self.duration_ms / (self.mtbf_ms + self.mean_downtime_ms)
    }
}

/// A seeded renewal process over the *directed links* of a full-mesh
/// fabric: the generator of [`LinkFault`] windows, the link-side sibling of
/// [`FaultProcess`].
///
/// Each of the `nodes * (nodes - 1)` directed links draws one sequential
/// renewal chain — up-time ~ Exp(`link_mtbf_ms`), window ~
/// Exp(`mean_outage_ms`), one uniform draw picking the kind (degraded
/// below `degraded_fraction`, down otherwise) — links in `(from, to)`
/// lexicographic order, so a replayed seed sees a bit-identical schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkFaultProcess {
    /// Number of nodes; windows strike every directed pair among them.
    pub nodes: usize,
    /// Mean up-time between consecutive fault windows on one directed
    /// link, in milliseconds (the link-level MTBF).
    pub link_mtbf_ms: f64,
    /// Mean length of one link fault window, in milliseconds.
    pub mean_outage_ms: f64,
    /// Fraction of windows that throttle bandwidth instead of taking the
    /// link down, in `[0, 1]`.
    pub degraded_fraction: f64,
    /// Numerator of the degraded bandwidth fraction drawn for degraded
    /// windows.
    pub bandwidth_num: u32,
    /// Denominator of the degraded bandwidth fraction;
    /// `0 < bandwidth_num <= bandwidth_den`.
    pub bandwidth_den: u32,
    /// Windows start inside `[0, duration_ms)`; one that starts inside the
    /// horizon may end past it.
    pub duration_ms: f64,
}

impl LinkFaultProcess {
    /// An outage-only process (every window takes its link down).
    pub fn outages(nodes: usize, link_mtbf_ms: f64, mean_outage_ms: f64, duration_ms: f64) -> Self {
        LinkFaultProcess {
            nodes,
            link_mtbf_ms,
            mean_outage_ms,
            degraded_fraction: 0.0,
            bandwidth_num: 1,
            bandwidth_den: 4,
            duration_ms,
        }
    }

    /// Sets the degraded fraction and the throttled bandwidth `num / den`
    /// drawn for those windows, keeping the rest of the process.
    pub fn with_degraded(mut self, degraded_fraction: f64, num: u32, den: u32) -> Self {
        self.degraded_fraction = degraded_fraction;
        self.bandwidth_num = num;
        self.bandwidth_den = den;
        self
    }

    /// Validates the process parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < 2 {
            return Err("a link process needs at least two nodes".into());
        }
        let positive = |value: f64, what: &str| -> Result<(), String> {
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("{what} must be positive and finite"));
            }
            Ok(())
        };
        positive(self.link_mtbf_ms, "link MTBF")?;
        positive(self.mean_outage_ms, "mean outage")?;
        positive(self.duration_ms, "duration")?;
        if !self.degraded_fraction.is_finite() || !(0.0..=1.0).contains(&self.degraded_fraction) {
            return Err("degraded fraction must be within [0, 1]".into());
        }
        if self.bandwidth_num == 0 || self.bandwidth_num > self.bandwidth_den {
            return Err("degraded bandwidth needs 0 < num <= den (slowdown only)".into());
        }
        Ok(())
    }

    /// Samples one link-fault window set from the seeded RNG, in canonical
    /// `(start, from, to)` order, ready for [`FaultSchedule::with_links`].
    /// Times convert to cycles on the Table I timeline like every other
    /// generator, so schedules are reproducible independent of the
    /// simulated NPU configuration.
    ///
    /// # Panics
    ///
    /// Panics if the process parameters are invalid.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<LinkFault> {
        if let Err(msg) = self.validate() {
            panic!("invalid LinkFaultProcess: {msg}");
        }
        let timeline = NpuConfig::paper_default();
        let mut links = Vec::new();
        for from in 0..self.nodes {
            for to in 0..self.nodes {
                if from == to {
                    continue;
                }
                let mut t_ms = 0.0;
                loop {
                    t_ms += exp_sample(self.link_mtbf_ms, rng);
                    if t_ms >= self.duration_ms {
                        break;
                    }
                    let window_ms = exp_sample(self.mean_outage_ms, rng);
                    let u: f64 = rng.gen();
                    let kind = if u < self.degraded_fraction {
                        LinkFaultKind::Degraded {
                            bandwidth_num: self.bandwidth_num,
                            bandwidth_den: self.bandwidth_den,
                        }
                    } else {
                        LinkFaultKind::Down
                    };
                    let start = timeline.millis_to_cycles(t_ms);
                    let end =
                        timeline.millis_to_cycles(t_ms + window_ms).max(start) + Cycles::new(1);
                    links.push(LinkFault {
                        from,
                        to,
                        start,
                        end,
                        kind,
                    });
                    t_ms += window_ms;
                }
            }
        }
        links.sort_by_key(|l| (l.start, l.from, l.to));
        links
    }

    /// The expected number of link fault windows over the whole fabric.
    pub fn expected_faults(&self) -> f64 {
        (self.nodes * (self.nodes - 1)) as f64 * self.duration_ms
            / (self.link_mtbf_ms + self.mean_outage_ms)
    }
}

/// Draws one exponential gap with the given mean via inverse-CDF sampling.
fn exp_sample<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen();
    (-(1.0 - u).ln() * mean).max(MIN_GAP_MS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic_and_canonical() {
        let process = FaultProcess::crashes(4, 50.0, 10.0, 400.0).with_freeze_fraction(0.3);
        let a = process.generate(&mut StdRng::seed_from_u64(7));
        let b = process.generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        assert_ne!(a, process.generate(&mut StdRng::seed_from_u64(8)));
        assert!(!a.is_empty());
        assert!(a.validate().is_ok());
        // Both kinds appear at a 30% freeze fraction over ~20+ windows.
        assert!(a.events.iter().any(|e| e.kind == FaultKind::Crash));
        assert!(a.events.iter().any(|e| e.kind == FaultKind::Freeze));
        let horizon = NpuConfig::paper_default().millis_to_cycles(400.0);
        for event in &a.events {
            assert!(event.node < 4);
            assert!(event.start < horizon);
            assert!(event.end > event.start);
        }
    }

    #[test]
    fn fault_count_tracks_the_renewal_rate() {
        let process = FaultProcess::crashes(8, 40.0, 10.0, 2000.0);
        let mut total = 0usize;
        for seed in 0..4 {
            total += process.generate(&mut StdRng::seed_from_u64(seed)).len();
        }
        let mean = total as f64 / 4.0;
        let expected = process.expected_faults();
        assert!(
            (mean - expected).abs() < 0.25 * expected,
            "mean fault count {mean} vs expected {expected}"
        );
    }

    #[test]
    fn per_node_windows_never_overlap() {
        let process = FaultProcess::crashes(3, 5.0, 20.0, 500.0).with_freeze_fraction(0.5);
        let schedule = process.generate(&mut StdRng::seed_from_u64(42));
        assert!(schedule.validate().is_ok());
        let downtime = schedule.downtime_per_node(3);
        assert_eq!(downtime.len(), 3);
        assert!(downtime.iter().any(|d| *d > Cycles::ZERO));
        // Nodes past the process's range have no downtime.
        assert_eq!(schedule.downtime_per_node(5)[4], Cycles::ZERO);
    }

    #[test]
    fn from_events_sorts_into_canonical_order() {
        let schedule = FaultSchedule::from_events(vec![
            NodeFault {
                node: 1,
                start: Cycles::new(500),
                end: Cycles::new(600),
                kind: FaultKind::Freeze,
            },
            NodeFault {
                node: 0,
                start: Cycles::new(100),
                end: Cycles::new(900),
                kind: FaultKind::Crash,
            },
        ]);
        assert_eq!(schedule.events[0].node, 0);
        assert_eq!(schedule.len(), 2);
        assert!(!schedule.is_empty());
        assert!(FaultSchedule::none().is_empty());
        assert_eq!(schedule.events[0].duration(), Cycles::new(800));
        assert_eq!(FaultKind::Crash.to_string(), "crash");
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_windows_on_one_node_are_rejected() {
        let _ = FaultSchedule::from_events(vec![
            NodeFault {
                node: 0,
                start: Cycles::new(100),
                end: Cycles::new(900),
                kind: FaultKind::Crash,
            },
            NodeFault {
                node: 0,
                start: Cycles::new(500),
                end: Cycles::new(600),
                kind: FaultKind::Freeze,
            },
        ]);
    }

    #[test]
    fn degrade_windows_are_drawn_and_validated() {
        let process = FaultProcess::crashes(4, 20.0, 8.0, 600.0).with_degradation(0.6, 1, 4);
        let schedule = process.generate(&mut StdRng::seed_from_u64(11));
        assert!(schedule.validate().is_ok());
        assert!(schedule.events.iter().any(|e| matches!(
            e.kind,
            FaultKind::Degrade {
                speed_num: 1,
                speed_den: 4
            }
        )));
        assert!(schedule.events.iter().any(|e| e.kind == FaultKind::Crash));
        assert_eq!(
            FaultKind::Degrade {
                speed_num: 1,
                speed_den: 4
            }
            .to_string(),
            "degrade"
        );
    }

    #[test]
    fn degrade_free_streams_are_bit_identical_to_pre_degrade_draws() {
        // degrade_fraction == 0 must consume the RNG exactly as before the
        // degrade kind existed: one uniform per window.
        let base = FaultProcess::crashes(3, 15.0, 5.0, 300.0).with_freeze_fraction(0.4);
        let with_zero_degrade = base.clone().with_degradation(0.0, 1, 8);
        assert_eq!(
            base.generate(&mut StdRng::seed_from_u64(99)),
            with_zero_degrade.generate(&mut StdRng::seed_from_u64(99)),
        );
    }

    #[test]
    fn mixed_kind_overlap_gets_its_dedicated_error() {
        let make = |kind0: FaultKind, kind1: FaultKind| FaultSchedule {
            events: vec![
                NodeFault {
                    node: 2,
                    start: Cycles::new(100),
                    end: Cycles::new(900),
                    kind: kind0,
                },
                NodeFault {
                    node: 2,
                    start: Cycles::new(500),
                    end: Cycles::new(600),
                    kind: kind1,
                },
            ],
            links: Vec::new(),
        };
        let degrade = FaultKind::Degrade {
            speed_num: 1,
            speed_den: 2,
        };
        assert_eq!(
            make(degrade, FaultKind::Crash).validate(),
            Err(FaultScheduleError::MixedKindOverlap { node: 2 }.into())
        );
        assert_eq!(
            make(FaultKind::Crash, FaultKind::Crash).validate(),
            Err(FaultScheduleError::OverlappingWindows { node: 2 }.into())
        );
        // Both overlap errors say "overlapping"; only the mixed one names
        // the no-nesting rule.
        let mixed = FaultScheduleError::MixedKindOverlap { node: 2 }.to_string();
        assert!(mixed.contains("overlapping") && mixed.contains("split"));
    }

    #[test]
    fn invalid_degrade_speeds_are_rejected() {
        let event = |num, den| NodeFault {
            node: 0,
            start: Cycles::new(10),
            end: Cycles::new(20),
            kind: FaultKind::Degrade {
                speed_num: num,
                speed_den: den,
            },
        };
        for (num, den) in [(0, 2), (3, 2)] {
            assert_eq!(
                FaultSchedule {
                    events: vec![event(num, den)],
                    links: Vec::new(),
                }
                .validate(),
                Err(FaultScheduleError::InvalidDegradeSpeed { index: 0, node: 0 }.into())
            );
        }
        assert!(FaultSchedule {
            events: vec![event(2, 2)],
            links: Vec::new(),
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn link_generation_is_deterministic_and_canonical() {
        let process = LinkFaultProcess::outages(3, 40.0, 8.0, 400.0).with_degraded(0.3, 1, 4);
        let a = process.generate(&mut StdRng::seed_from_u64(5));
        let b = process.generate(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        assert_ne!(a, process.generate(&mut StdRng::seed_from_u64(6)));
        assert!(!a.is_empty());
        let schedule = FaultSchedule::none().with_links(a.clone());
        assert!(schedule.validate().is_ok());
        assert!(!schedule.is_empty());
        assert_eq!(
            schedule.len(),
            0,
            "link windows do not count as node windows"
        );
        assert!(a.iter().any(|l| l.kind == LinkFaultKind::Down));
        assert!(a
            .iter()
            .any(|l| matches!(l.kind, LinkFaultKind::Degraded { .. })));
        for link in &a {
            assert!(link.from < 3 && link.to < 3 && link.from != link.to);
            assert!(link.duration() > Cycles::ZERO);
        }
        assert_eq!(LinkFaultKind::Down.to_string(), "link-down");
    }

    #[test]
    fn link_count_tracks_the_renewal_rate() {
        let process = LinkFaultProcess::outages(4, 30.0, 6.0, 1500.0);
        let mut total = 0usize;
        for seed in 0..4 {
            total += process.generate(&mut StdRng::seed_from_u64(seed)).len();
        }
        let mean = total as f64 / 4.0;
        let expected = process.expected_faults();
        assert!(
            (mean - expected).abs() < 0.25 * expected,
            "mean link fault count {mean} vs expected {expected}"
        );
    }

    #[test]
    fn partition_downs_every_cross_link_both_directions() {
        let links = LinkFault::partition(&[0, 1], &[2], Cycles::new(100), Cycles::new(900));
        assert_eq!(links.len(), 4);
        for (a, b) in [(0, 2), (2, 0), (1, 2), (2, 1)] {
            assert!(
                links
                    .iter()
                    .any(|l| l.from == a && l.to == b && l.kind == LinkFaultKind::Down),
                "missing {a}->{b}"
            );
        }
        // Intra-group links are untouched.
        assert!(!links.iter().any(|l| l.from == 0 && l.to == 1));
        // Composes with node faults in one schedule.
        let schedule = FaultSchedule::from_events(vec![NodeFault {
            node: 2,
            start: Cycles::new(50),
            end: Cycles::new(60),
            kind: FaultKind::Crash,
        }])
        .with_links(links);
        assert!(schedule.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn partition_rejects_overlapping_groups() {
        let _ = LinkFault::partition(&[0, 1], &[1, 2], Cycles::new(0), Cycles::new(10));
    }

    #[test]
    fn link_schedule_invariants_are_enforced() {
        let link = |from, to, start: u64, end: u64, kind| LinkFault {
            from,
            to,
            start: Cycles::new(start),
            end: Cycles::new(end),
            kind,
        };
        let of = |links: Vec<LinkFault>| FaultSchedule {
            events: Vec::new(),
            links,
        };
        assert_eq!(
            of(vec![link(0, 0, 10, 20, LinkFaultKind::Down)]).validate(),
            Err(FaultScheduleError::SelfLink { index: 0, node: 0 }.into())
        );
        assert_eq!(
            of(vec![link(0, 1, 20, 20, LinkFaultKind::Down)]).validate(),
            Err(FaultScheduleError::EmptyLinkWindow {
                index: 0,
                from: 0,
                to: 1
            }
            .into())
        );
        assert_eq!(
            of(vec![link(
                0,
                1,
                10,
                20,
                LinkFaultKind::Degraded {
                    bandwidth_num: 3,
                    bandwidth_den: 2
                }
            )])
            .validate(),
            Err(FaultScheduleError::InvalidBandwidthScale {
                index: 0,
                from: 0,
                to: 1
            }
            .into())
        );
        assert_eq!(
            of(vec![
                link(0, 1, 10, 50, LinkFaultKind::Down),
                link(0, 1, 30, 60, LinkFaultKind::Down)
            ])
            .validate(),
            Err(FaultScheduleError::OverlappingLinkWindows { from: 0, to: 1 }.into())
        );
        assert_eq!(
            of(vec![
                link(0, 2, 30, 60, LinkFaultKind::Down),
                link(0, 1, 10, 50, LinkFaultKind::Down)
            ])
            .validate(),
            Err(FaultScheduleError::LinksUnsorted.into())
        );
        // Same window on two different links is fine.
        assert!(of(vec![
            link(0, 1, 10, 50, LinkFaultKind::Down),
            link(1, 0, 10, 50, LinkFaultKind::Down)
        ])
        .validate()
        .is_ok());
    }

    #[test]
    fn fault_domain_error_display_names_the_domain() {
        let schedule: FaultDomainError = FaultScheduleError::Unsorted.into();
        assert!(schedule.to_string().starts_with("fault schedule:"));
        let fabric: FaultDomainError = InterconnectError::ZeroBandwidth.into();
        assert!(fabric.to_string().starts_with("interconnect:"));
        assert!(std::error::Error::source(&fabric).is_some());
    }

    #[test]
    fn link_process_validation_errors_cover_each_field() {
        let base = LinkFaultProcess::outages(3, 10.0, 5.0, 100.0);
        assert!(base.validate().is_ok());
        let cases = [
            LinkFaultProcess {
                nodes: 1,
                ..base.clone()
            },
            LinkFaultProcess {
                link_mtbf_ms: 0.0,
                ..base.clone()
            },
            LinkFaultProcess {
                mean_outage_ms: -1.0,
                ..base.clone()
            },
            LinkFaultProcess {
                duration_ms: f64::NAN,
                ..base.clone()
            },
            LinkFaultProcess {
                degraded_fraction: 1.5,
                ..base.clone()
            },
            LinkFaultProcess {
                bandwidth_num: 0,
                ..base.clone()
            },
            LinkFaultProcess {
                bandwidth_num: 5,
                bandwidth_den: 4,
                ..base.clone()
            },
        ];
        for case in cases {
            assert!(case.validate().is_err(), "{case:?}");
        }
    }

    #[test]
    fn validation_errors_cover_each_field() {
        let base = FaultProcess::crashes(2, 10.0, 5.0, 100.0);
        assert!(base.validate().is_ok());
        let cases = [
            FaultProcess {
                nodes: 0,
                ..base.clone()
            },
            FaultProcess {
                mtbf_ms: 0.0,
                ..base.clone()
            },
            FaultProcess {
                mean_downtime_ms: -1.0,
                ..base.clone()
            },
            FaultProcess {
                duration_ms: f64::NAN,
                ..base.clone()
            },
            FaultProcess {
                freeze_fraction: 1.5,
                ..base.clone()
            },
            FaultProcess {
                degrade_fraction: -0.1,
                ..base.clone()
            },
            FaultProcess {
                freeze_fraction: 0.7,
                degrade_fraction: 0.7,
                ..base.clone()
            },
            FaultProcess {
                degrade_fraction: 0.5,
                degrade_speed_num: 0,
                ..base.clone()
            },
            FaultProcess {
                degrade_fraction: 0.5,
                degrade_speed_num: 3,
                degrade_speed_den: 2,
                ..base.clone()
            },
        ];
        for case in cases {
            assert!(case.validate().is_err(), "{case:?}");
        }
    }
}
