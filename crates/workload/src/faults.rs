//! Seeded node-fault processes for the fault-tolerant cluster layer.
//!
//! A serving cluster's reliability questions — what does a crash cost, how
//! much progress does checkpoint-priced recovery preserve, how far do
//! stragglers drag the tail — need fault *schedules* that are as
//! reproducible as the arrival streams they are driven against. This module
//! is the fault-side sibling of [`crate::arrivals`]: a [`FaultProcess`]
//! draws per-node alternating up-time / fault-window renewals from a seeded
//! RNG and materializes them as a [`FaultSchedule`] — a time-sorted stream
//! of node-scoped [`NodeFault`] events the cluster loops merge into their
//! global event timeline.
//!
//! Three fault kinds are modeled:
//!
//! * [`FaultKind::Crash`] — the node loses all non-checkpointed progress at
//!   the window's start and is down (no execution, no dispatch) until the
//!   window's end, when it recovers empty.
//! * [`FaultKind::Freeze`] — a straggler window: the node freezes in place
//!   (resident tasks keep their state but make no progress) and resumes
//!   where it left off at the window's end.
//! * [`FaultKind::Degrade`] — a soft straggler window: the node keeps
//!   running but its clock is stretched to the rational fraction
//!   `speed_num / speed_den` of nominal (thermal throttling, contention).
//!
//! Up-times are exponential with mean `mtbf_ms`; fault windows are
//! exponential with mean `mean_downtime_ms`; one uniform draw per window
//! picks the kind (freeze below `freeze_fraction`, degrade in the next
//! `degrade_fraction`, crash otherwise). All sampling is a pure function of
//! the seeded RNG — node `k`'s renewal chain is drawn before node `k+1`'s —
//! so a sweep replaying the same seed sees a bit-identical schedule.
//!
//! # Window composition and precedence
//!
//! Windows on one node must be pairwise disjoint **regardless of kind**: a
//! node is up, crashed, frozen, or degraded — never two at once. There is
//! deliberately no nesting (no "crash inside a degrade window"); a crash
//! that interrupts a degraded phase is expressed by *splitting* the degrade
//! window around the crash. [`FaultSchedule::validate`] rejects same-kind
//! overlap with [`FaultScheduleError::OverlappingWindows`] and mixed-kind
//! overlap with the dedicated
//! [`FaultScheduleError::MixedKindOverlap`], so the sequential-composition
//! rule is explicit rather than implicit.

use rand::Rng;
use serde::{Deserialize, Serialize};

use npu_sim::{Cycles, NpuConfig};

/// Floor on sampled exponential gaps, in milliseconds (see
/// [`crate::arrivals`]'s identically named constant).
const MIN_GAP_MS: f64 = 1e-9;

/// What a fault window does to the node it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node crashes: resident tasks are salvaged at their last
    /// checkpoint boundary (non-checkpointed progress is lost) and the node
    /// is down for the window.
    Crash,
    /// The node freezes (straggler window): resident tasks stay in place
    /// but make no progress until the window ends.
    Freeze,
    /// The node degrades (soft straggler window): it keeps executing, but
    /// its clock runs at `speed_num / speed_den` of nominal speed until the
    /// window ends. Slowdown only: `0 < speed_num <= speed_den`.
    Degrade {
        /// Numerator of the degraded speed fraction.
        speed_num: u32,
        /// Denominator of the degraded speed fraction.
        speed_den: u32,
    },
}

impl FaultKind {
    /// A short stable label for reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Freeze => "freeze",
            FaultKind::Degrade { .. } => "degrade",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One node-scoped fault window on the cluster's global timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeFault {
    /// The node the fault strikes.
    pub node: usize,
    /// When the fault begins (global cycles).
    pub start: Cycles,
    /// When the node recovers (global cycles); strictly after `start`.
    pub end: Cycles,
    /// Crash or freeze.
    pub kind: FaultKind,
}

impl NodeFault {
    /// The window's length in cycles.
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }
}

/// A violation of the [`FaultSchedule`] invariants.
///
/// Overlap on one node is split into two variants so that mixed-kind
/// composition mistakes (a crash window nested inside a degrade window,
/// say) surface with a message that names the rule being broken: windows
/// compose *sequentially*, never by nesting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultScheduleError {
    /// Events are not sorted by `(start, node)`.
    Unsorted,
    /// A window has `end <= start`.
    EmptyWindow {
        /// Index of the offending event in the schedule.
        index: usize,
        /// Node the window names.
        node: usize,
    },
    /// A degrade window names an invalid speed fraction (`speed_num` must
    /// satisfy `0 < speed_num <= speed_den`).
    InvalidDegradeSpeed {
        /// Index of the offending event in the schedule.
        index: usize,
        /// Node the window names.
        node: usize,
    },
    /// Two windows of the *same* kind overlap on one node.
    OverlappingWindows {
        /// Node with the overlapping pair.
        node: usize,
    },
    /// Two windows of *different* kinds overlap on one node — nesting (for
    /// example crash-inside-degrade) is not a supported composition; split
    /// the outer window instead.
    MixedKindOverlap {
        /// Node with the overlapping pair.
        node: usize,
    },
}

impl std::fmt::Display for FaultScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultScheduleError::Unsorted => f.write_str("events must be sorted by (start, node)"),
            FaultScheduleError::EmptyWindow { index, node } => {
                write!(f, "event {index}: fault window on node {node} is empty")
            }
            FaultScheduleError::InvalidDegradeSpeed { index, node } => write!(
                f,
                "event {index}: degrade window on node {node} needs 0 < speed_num <= speed_den"
            ),
            FaultScheduleError::OverlappingWindows { node } => {
                write!(f, "node {node} has overlapping fault windows")
            }
            FaultScheduleError::MixedKindOverlap { node } => write!(
                f,
                "node {node} has overlapping fault windows of different kinds; \
                 windows compose sequentially — split the outer window instead of nesting"
            ),
        }
    }
}

impl std::error::Error for FaultScheduleError {}

/// A deterministic, time-sorted schedule of node fault windows.
///
/// Invariants (enforced by the generators and checked by
/// [`FaultSchedule::validate`]): events are sorted by `(start, node)`,
/// every window has positive length, degrade windows carry a valid speed
/// fraction, and windows on the *same* node do not overlap — a node is
/// either up, crashed, frozen, or degraded, never two at once. See the
/// module docs for the sequential-composition precedence rule.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The fault windows, sorted by `(start, node)`.
    pub events: Vec<NodeFault>,
}

impl FaultSchedule {
    /// A schedule with no faults (the degenerate fault-free driving).
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Builds a schedule from explicit windows, sorting them into canonical
    /// `(start, node)` order.
    ///
    /// # Panics
    ///
    /// Panics if the windows violate the schedule invariants (empty
    /// windows, or overlapping windows on one node).
    pub fn from_events(mut events: Vec<NodeFault>) -> Self {
        events.sort_by_key(|e| (e.start, e.node));
        let schedule = FaultSchedule { events };
        if let Err(msg) = schedule.validate() {
            panic!("invalid FaultSchedule: {msg}");
        }
        schedule
    }

    /// Whether the schedule contains no fault windows.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of fault windows.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Validates the schedule invariants.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultScheduleError`] found. Mixed-kind overlap
    /// on one node reports [`FaultScheduleError::MixedKindOverlap`] so the
    /// no-nesting precedence rule (see the module docs) is named explicitly.
    pub fn validate(&self) -> Result<(), FaultScheduleError> {
        for pair in self.events.windows(2) {
            if (pair[0].start, pair[0].node) > (pair[1].start, pair[1].node) {
                return Err(FaultScheduleError::Unsorted);
            }
        }
        for (i, event) in self.events.iter().enumerate() {
            if event.end <= event.start {
                return Err(FaultScheduleError::EmptyWindow {
                    index: i,
                    node: event.node,
                });
            }
            if let FaultKind::Degrade {
                speed_num,
                speed_den,
            } = event.kind
            {
                if speed_num == 0 || speed_num > speed_den {
                    return Err(FaultScheduleError::InvalidDegradeSpeed {
                        index: i,
                        node: event.node,
                    });
                }
            }
            for later in &self.events[i + 1..] {
                if later.node == event.node && later.start < event.end {
                    return Err(if later.kind == event.kind {
                        FaultScheduleError::OverlappingWindows { node: event.node }
                    } else {
                        FaultScheduleError::MixedKindOverlap { node: event.node }
                    });
                }
            }
        }
        Ok(())
    }

    /// Total down/frozen cycles per node over `nodes` nodes (nodes beyond
    /// the schedule's highest-numbered faulty node report zero).
    pub fn downtime_per_node(&self, nodes: usize) -> Vec<Cycles> {
        let mut downtime = vec![Cycles::ZERO; nodes];
        for event in &self.events {
            if event.node < nodes {
                downtime[event.node] += event.duration();
            }
        }
        downtime
    }
}

/// A seeded renewal fault process: the generator of [`FaultSchedule`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProcess {
    /// Number of nodes the process covers (faults strike nodes `0..nodes`).
    pub nodes: usize,
    /// Mean up-time between consecutive fault windows on one node, in
    /// milliseconds (the node-level MTBF).
    pub mtbf_ms: f64,
    /// Mean length of one fault window, in milliseconds.
    pub mean_downtime_ms: f64,
    /// Fraction of fault windows that are freezes instead of crashes, in
    /// `[0, 1]`.
    pub freeze_fraction: f64,
    /// Fraction of fault windows that are degrade (throttle) windows, in
    /// `[0, 1]`; `freeze_fraction + degrade_fraction` must not exceed 1.
    pub degrade_fraction: f64,
    /// Numerator of the degraded speed fraction drawn for degrade windows.
    pub degrade_speed_num: u32,
    /// Denominator of the degraded speed fraction drawn for degrade
    /// windows; `0 < degrade_speed_num <= degrade_speed_den`.
    pub degrade_speed_den: u32,
    /// Faults start inside `[0, duration_ms)`; a window that starts inside
    /// the horizon may end past it.
    pub duration_ms: f64,
}

impl FaultProcess {
    /// A crash-only process — the configuration the recovery-policy sweep
    /// drives.
    pub fn crashes(nodes: usize, mtbf_ms: f64, mean_downtime_ms: f64, duration_ms: f64) -> Self {
        FaultProcess {
            nodes,
            mtbf_ms,
            mean_downtime_ms,
            freeze_fraction: 0.0,
            degrade_fraction: 0.0,
            degrade_speed_num: 1,
            degrade_speed_den: 2,
            duration_ms,
        }
    }

    /// Sets the freeze fraction, keeping the rest of the process.
    pub fn with_freeze_fraction(mut self, freeze_fraction: f64) -> Self {
        self.freeze_fraction = freeze_fraction;
        self
    }

    /// Sets the degrade fraction and the degraded speed `num / den` drawn
    /// for those windows, keeping the rest of the process.
    pub fn with_degradation(mut self, degrade_fraction: f64, num: u32, den: u32) -> Self {
        self.degrade_fraction = degrade_fraction;
        self.degrade_speed_num = num;
        self.degrade_speed_den = den;
        self
    }

    /// Validates the process parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("at least one node is required".into());
        }
        let positive = |value: f64, what: &str| -> Result<(), String> {
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("{what} must be positive and finite"));
            }
            Ok(())
        };
        positive(self.mtbf_ms, "MTBF")?;
        positive(self.mean_downtime_ms, "mean downtime")?;
        positive(self.duration_ms, "duration")?;
        if !self.freeze_fraction.is_finite() || !(0.0..=1.0).contains(&self.freeze_fraction) {
            return Err("freeze fraction must be within [0, 1]".into());
        }
        if !self.degrade_fraction.is_finite() || !(0.0..=1.0).contains(&self.degrade_fraction) {
            return Err("degrade fraction must be within [0, 1]".into());
        }
        if self.freeze_fraction + self.degrade_fraction > 1.0 {
            return Err("freeze and degrade fractions must sum to at most 1".into());
        }
        if self.degrade_speed_num == 0 || self.degrade_speed_num > self.degrade_speed_den {
            return Err("degrade speed needs 0 < num <= den (slowdown only)".into());
        }
        Ok(())
    }

    /// Samples one fault schedule from the seeded RNG.
    ///
    /// Per node, in node order, one sequential renewal chain: up-time ~
    /// Exp(`mtbf_ms`), then a window ~ Exp(`mean_downtime_ms`) whose kind
    /// is picked by one uniform draw (freeze below `freeze_fraction`,
    /// degrade in the next `degrade_fraction`, crash otherwise — so streams
    /// with `degrade_fraction == 0` are bit-identical to pre-degrade ones),
    /// repeating until the next
    /// window would start at or past `duration_ms`. Times convert to cycles
    /// on the Table I timeline (like the arrival streams), so schedules are
    /// reproducible independent of the simulated NPU configuration.
    ///
    /// # Panics
    ///
    /// Panics if the process parameters are invalid.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> FaultSchedule {
        if let Err(msg) = self.validate() {
            panic!("invalid FaultProcess: {msg}");
        }
        let timeline = NpuConfig::paper_default();
        let mut events = Vec::new();
        for node in 0..self.nodes {
            let mut t_ms = 0.0;
            loop {
                t_ms += exp_sample(self.mtbf_ms, rng);
                if t_ms >= self.duration_ms {
                    break;
                }
                let window_ms = exp_sample(self.mean_downtime_ms, rng);
                let u: f64 = rng.gen();
                let kind = if u < self.freeze_fraction {
                    FaultKind::Freeze
                } else if u < self.freeze_fraction + self.degrade_fraction {
                    FaultKind::Degrade {
                        speed_num: self.degrade_speed_num,
                        speed_den: self.degrade_speed_den,
                    }
                } else {
                    FaultKind::Crash
                };
                let start = timeline.millis_to_cycles(t_ms);
                // A window shorter than one cycle still occupies one: the
                // schedule invariant requires strictly positive windows.
                let end = timeline.millis_to_cycles(t_ms + window_ms).max(start) + Cycles::new(1);
                events.push(NodeFault {
                    node,
                    start,
                    end,
                    kind,
                });
                t_ms += window_ms;
            }
        }
        FaultSchedule::from_events(events)
    }

    /// The expected number of fault windows over the whole cluster: each
    /// node renews roughly every `mtbf + downtime` milliseconds.
    pub fn expected_faults(&self) -> f64 {
        self.nodes as f64 * self.duration_ms / (self.mtbf_ms + self.mean_downtime_ms)
    }
}

/// Draws one exponential gap with the given mean via inverse-CDF sampling.
fn exp_sample<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen();
    (-(1.0 - u).ln() * mean).max(MIN_GAP_MS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic_and_canonical() {
        let process = FaultProcess::crashes(4, 50.0, 10.0, 400.0).with_freeze_fraction(0.3);
        let a = process.generate(&mut StdRng::seed_from_u64(7));
        let b = process.generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        assert_ne!(a, process.generate(&mut StdRng::seed_from_u64(8)));
        assert!(!a.is_empty());
        assert!(a.validate().is_ok());
        // Both kinds appear at a 30% freeze fraction over ~20+ windows.
        assert!(a.events.iter().any(|e| e.kind == FaultKind::Crash));
        assert!(a.events.iter().any(|e| e.kind == FaultKind::Freeze));
        let horizon = NpuConfig::paper_default().millis_to_cycles(400.0);
        for event in &a.events {
            assert!(event.node < 4);
            assert!(event.start < horizon);
            assert!(event.end > event.start);
        }
    }

    #[test]
    fn fault_count_tracks_the_renewal_rate() {
        let process = FaultProcess::crashes(8, 40.0, 10.0, 2000.0);
        let mut total = 0usize;
        for seed in 0..4 {
            total += process.generate(&mut StdRng::seed_from_u64(seed)).len();
        }
        let mean = total as f64 / 4.0;
        let expected = process.expected_faults();
        assert!(
            (mean - expected).abs() < 0.25 * expected,
            "mean fault count {mean} vs expected {expected}"
        );
    }

    #[test]
    fn per_node_windows_never_overlap() {
        let process = FaultProcess::crashes(3, 5.0, 20.0, 500.0).with_freeze_fraction(0.5);
        let schedule = process.generate(&mut StdRng::seed_from_u64(42));
        assert!(schedule.validate().is_ok());
        let downtime = schedule.downtime_per_node(3);
        assert_eq!(downtime.len(), 3);
        assert!(downtime.iter().any(|d| *d > Cycles::ZERO));
        // Nodes past the process's range have no downtime.
        assert_eq!(schedule.downtime_per_node(5)[4], Cycles::ZERO);
    }

    #[test]
    fn from_events_sorts_into_canonical_order() {
        let schedule = FaultSchedule::from_events(vec![
            NodeFault {
                node: 1,
                start: Cycles::new(500),
                end: Cycles::new(600),
                kind: FaultKind::Freeze,
            },
            NodeFault {
                node: 0,
                start: Cycles::new(100),
                end: Cycles::new(900),
                kind: FaultKind::Crash,
            },
        ]);
        assert_eq!(schedule.events[0].node, 0);
        assert_eq!(schedule.len(), 2);
        assert!(!schedule.is_empty());
        assert!(FaultSchedule::none().is_empty());
        assert_eq!(schedule.events[0].duration(), Cycles::new(800));
        assert_eq!(FaultKind::Crash.to_string(), "crash");
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_windows_on_one_node_are_rejected() {
        let _ = FaultSchedule::from_events(vec![
            NodeFault {
                node: 0,
                start: Cycles::new(100),
                end: Cycles::new(900),
                kind: FaultKind::Crash,
            },
            NodeFault {
                node: 0,
                start: Cycles::new(500),
                end: Cycles::new(600),
                kind: FaultKind::Freeze,
            },
        ]);
    }

    #[test]
    fn degrade_windows_are_drawn_and_validated() {
        let process = FaultProcess::crashes(4, 20.0, 8.0, 600.0).with_degradation(0.6, 1, 4);
        let schedule = process.generate(&mut StdRng::seed_from_u64(11));
        assert!(schedule.validate().is_ok());
        assert!(schedule.events.iter().any(|e| matches!(
            e.kind,
            FaultKind::Degrade {
                speed_num: 1,
                speed_den: 4
            }
        )));
        assert!(schedule.events.iter().any(|e| e.kind == FaultKind::Crash));
        assert_eq!(
            FaultKind::Degrade {
                speed_num: 1,
                speed_den: 4
            }
            .to_string(),
            "degrade"
        );
    }

    #[test]
    fn degrade_free_streams_are_bit_identical_to_pre_degrade_draws() {
        // degrade_fraction == 0 must consume the RNG exactly as before the
        // degrade kind existed: one uniform per window.
        let base = FaultProcess::crashes(3, 15.0, 5.0, 300.0).with_freeze_fraction(0.4);
        let with_zero_degrade = base.clone().with_degradation(0.0, 1, 8);
        assert_eq!(
            base.generate(&mut StdRng::seed_from_u64(99)),
            with_zero_degrade.generate(&mut StdRng::seed_from_u64(99)),
        );
    }

    #[test]
    fn mixed_kind_overlap_gets_its_dedicated_error() {
        let make = |kind0: FaultKind, kind1: FaultKind| FaultSchedule {
            events: vec![
                NodeFault {
                    node: 2,
                    start: Cycles::new(100),
                    end: Cycles::new(900),
                    kind: kind0,
                },
                NodeFault {
                    node: 2,
                    start: Cycles::new(500),
                    end: Cycles::new(600),
                    kind: kind1,
                },
            ],
        };
        let degrade = FaultKind::Degrade {
            speed_num: 1,
            speed_den: 2,
        };
        assert_eq!(
            make(degrade, FaultKind::Crash).validate(),
            Err(FaultScheduleError::MixedKindOverlap { node: 2 })
        );
        assert_eq!(
            make(FaultKind::Crash, FaultKind::Crash).validate(),
            Err(FaultScheduleError::OverlappingWindows { node: 2 })
        );
        // Both overlap errors say "overlapping"; only the mixed one names
        // the no-nesting rule.
        let mixed = FaultScheduleError::MixedKindOverlap { node: 2 }.to_string();
        assert!(mixed.contains("overlapping") && mixed.contains("split"));
    }

    #[test]
    fn invalid_degrade_speeds_are_rejected() {
        let event = |num, den| NodeFault {
            node: 0,
            start: Cycles::new(10),
            end: Cycles::new(20),
            kind: FaultKind::Degrade {
                speed_num: num,
                speed_den: den,
            },
        };
        for (num, den) in [(0, 2), (3, 2)] {
            assert_eq!(
                FaultSchedule {
                    events: vec![event(num, den)]
                }
                .validate(),
                Err(FaultScheduleError::InvalidDegradeSpeed { index: 0, node: 0 })
            );
        }
        assert!(FaultSchedule {
            events: vec![event(2, 2)]
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn validation_errors_cover_each_field() {
        let base = FaultProcess::crashes(2, 10.0, 5.0, 100.0);
        assert!(base.validate().is_ok());
        let cases = [
            FaultProcess {
                nodes: 0,
                ..base.clone()
            },
            FaultProcess {
                mtbf_ms: 0.0,
                ..base.clone()
            },
            FaultProcess {
                mean_downtime_ms: -1.0,
                ..base.clone()
            },
            FaultProcess {
                duration_ms: f64::NAN,
                ..base.clone()
            },
            FaultProcess {
                freeze_fraction: 1.5,
                ..base.clone()
            },
            FaultProcess {
                degrade_fraction: -0.1,
                ..base.clone()
            },
            FaultProcess {
                freeze_fraction: 0.7,
                degrade_fraction: 0.7,
                ..base.clone()
            },
            FaultProcess {
                degrade_fraction: 0.5,
                degrade_speed_num: 0,
                ..base.clone()
            },
            FaultProcess {
                degrade_fraction: 0.5,
                degrade_speed_num: 3,
                degrade_speed_den: 2,
                ..base.clone()
            },
        ];
        for case in cases {
            assert!(case.validate().is_err(), "{case:?}");
        }
    }
}
