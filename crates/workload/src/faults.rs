//! Seeded node-fault processes for the fault-tolerant cluster layer.
//!
//! A serving cluster's reliability questions — what does a crash cost, how
//! much progress does checkpoint-priced recovery preserve, how far do
//! stragglers drag the tail — need fault *schedules* that are as
//! reproducible as the arrival streams they are driven against. This module
//! is the fault-side sibling of [`crate::arrivals`]: a [`FaultProcess`]
//! draws per-node alternating up-time / fault-window renewals from a seeded
//! RNG and materializes them as a [`FaultSchedule`] — a time-sorted stream
//! of node-scoped [`NodeFault`] events the cluster loops merge into their
//! global event timeline.
//!
//! Two fault kinds are modeled:
//!
//! * [`FaultKind::Crash`] — the node loses all non-checkpointed progress at
//!   the window's start and is down (no execution, no dispatch) until the
//!   window's end, when it recovers empty.
//! * [`FaultKind::Freeze`] — a straggler window: the node freezes in place
//!   (resident tasks keep their state but make no progress) and resumes
//!   where it left off at the window's end.
//!
//! Up-times are exponential with mean `mtbf_ms`; fault windows are
//! exponential with mean `mean_downtime_ms`; each window is a crash with
//! probability `1 - freeze_fraction`. All sampling is a pure function of
//! the seeded RNG — node `k`'s renewal chain is drawn before node `k+1`'s —
//! so a sweep replaying the same seed sees a bit-identical schedule.

use rand::Rng;
use serde::{Deserialize, Serialize};

use npu_sim::{Cycles, NpuConfig};

/// Floor on sampled exponential gaps, in milliseconds (see
/// [`crate::arrivals`]'s identically named constant).
const MIN_GAP_MS: f64 = 1e-9;

/// What a fault window does to the node it strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The node crashes: resident tasks are salvaged at their last
    /// checkpoint boundary (non-checkpointed progress is lost) and the node
    /// is down for the window.
    Crash,
    /// The node freezes (straggler window): resident tasks stay in place
    /// but make no progress until the window ends.
    Freeze,
}

impl FaultKind {
    /// A short stable label for reports and logs.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Freeze => "freeze",
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One node-scoped fault window on the cluster's global timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeFault {
    /// The node the fault strikes.
    pub node: usize,
    /// When the fault begins (global cycles).
    pub start: Cycles,
    /// When the node recovers (global cycles); strictly after `start`.
    pub end: Cycles,
    /// Crash or freeze.
    pub kind: FaultKind,
}

impl NodeFault {
    /// The window's length in cycles.
    pub fn duration(&self) -> Cycles {
        self.end - self.start
    }
}

/// A deterministic, time-sorted schedule of node fault windows.
///
/// Invariants (enforced by the generators and checked by
/// [`FaultSchedule::validate`]): events are sorted by `(start, node)`,
/// every window has positive length, and windows on the *same* node do not
/// overlap — a node is either up, crashed, or frozen, never two at once.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// The fault windows, sorted by `(start, node)`.
    pub events: Vec<NodeFault>,
}

impl FaultSchedule {
    /// A schedule with no faults (the degenerate fault-free driving).
    pub fn none() -> Self {
        FaultSchedule::default()
    }

    /// Builds a schedule from explicit windows, sorting them into canonical
    /// `(start, node)` order.
    ///
    /// # Panics
    ///
    /// Panics if the windows violate the schedule invariants (empty
    /// windows, or overlapping windows on one node).
    pub fn from_events(mut events: Vec<NodeFault>) -> Self {
        events.sort_by_key(|e| (e.start, e.node));
        let schedule = FaultSchedule { events };
        if let Err(msg) = schedule.validate() {
            panic!("invalid FaultSchedule: {msg}");
        }
        schedule
    }

    /// Whether the schedule contains no fault windows.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of fault windows.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Validates the schedule invariants.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        for pair in self.events.windows(2) {
            if (pair[0].start, pair[0].node) > (pair[1].start, pair[1].node) {
                return Err("events must be sorted by (start, node)".into());
            }
        }
        for (i, event) in self.events.iter().enumerate() {
            if event.end <= event.start {
                return Err(format!(
                    "event {i}: fault window on node {} is empty",
                    event.node
                ));
            }
            for later in &self.events[i + 1..] {
                if later.node == event.node && later.start < event.end {
                    return Err(format!("node {} has overlapping fault windows", event.node));
                }
            }
        }
        Ok(())
    }

    /// Total down/frozen cycles per node over `nodes` nodes (nodes beyond
    /// the schedule's highest-numbered faulty node report zero).
    pub fn downtime_per_node(&self, nodes: usize) -> Vec<Cycles> {
        let mut downtime = vec![Cycles::ZERO; nodes];
        for event in &self.events {
            if event.node < nodes {
                downtime[event.node] += event.duration();
            }
        }
        downtime
    }
}

/// A seeded renewal fault process: the generator of [`FaultSchedule`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultProcess {
    /// Number of nodes the process covers (faults strike nodes `0..nodes`).
    pub nodes: usize,
    /// Mean up-time between consecutive fault windows on one node, in
    /// milliseconds (the node-level MTBF).
    pub mtbf_ms: f64,
    /// Mean length of one fault window, in milliseconds.
    pub mean_downtime_ms: f64,
    /// Fraction of fault windows that are freezes instead of crashes, in
    /// `[0, 1]`.
    pub freeze_fraction: f64,
    /// Faults start inside `[0, duration_ms)`; a window that starts inside
    /// the horizon may end past it.
    pub duration_ms: f64,
}

impl FaultProcess {
    /// A crash-only process — the configuration the recovery-policy sweep
    /// drives.
    pub fn crashes(nodes: usize, mtbf_ms: f64, mean_downtime_ms: f64, duration_ms: f64) -> Self {
        FaultProcess {
            nodes,
            mtbf_ms,
            mean_downtime_ms,
            freeze_fraction: 0.0,
            duration_ms,
        }
    }

    /// Sets the freeze fraction, keeping the rest of the process.
    pub fn with_freeze_fraction(mut self, freeze_fraction: f64) -> Self {
        self.freeze_fraction = freeze_fraction;
        self
    }

    /// Validates the process parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("at least one node is required".into());
        }
        let positive = |value: f64, what: &str| -> Result<(), String> {
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("{what} must be positive and finite"));
            }
            Ok(())
        };
        positive(self.mtbf_ms, "MTBF")?;
        positive(self.mean_downtime_ms, "mean downtime")?;
        positive(self.duration_ms, "duration")?;
        if !self.freeze_fraction.is_finite() || !(0.0..=1.0).contains(&self.freeze_fraction) {
            return Err("freeze fraction must be within [0, 1]".into());
        }
        Ok(())
    }

    /// Samples one fault schedule from the seeded RNG.
    ///
    /// Per node, in node order, one sequential renewal chain: up-time ~
    /// Exp(`mtbf_ms`), then a window ~ Exp(`mean_downtime_ms`) that is a
    /// freeze with probability `freeze_fraction`, repeating until the next
    /// window would start at or past `duration_ms`. Times convert to cycles
    /// on the Table I timeline (like the arrival streams), so schedules are
    /// reproducible independent of the simulated NPU configuration.
    ///
    /// # Panics
    ///
    /// Panics if the process parameters are invalid.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> FaultSchedule {
        if let Err(msg) = self.validate() {
            panic!("invalid FaultProcess: {msg}");
        }
        let timeline = NpuConfig::paper_default();
        let mut events = Vec::new();
        for node in 0..self.nodes {
            let mut t_ms = 0.0;
            loop {
                t_ms += exp_sample(self.mtbf_ms, rng);
                if t_ms >= self.duration_ms {
                    break;
                }
                let window_ms = exp_sample(self.mean_downtime_ms, rng);
                let kind = if rng.gen::<f64>() < self.freeze_fraction {
                    FaultKind::Freeze
                } else {
                    FaultKind::Crash
                };
                let start = timeline.millis_to_cycles(t_ms);
                // A window shorter than one cycle still occupies one: the
                // schedule invariant requires strictly positive windows.
                let end = timeline.millis_to_cycles(t_ms + window_ms).max(start) + Cycles::new(1);
                events.push(NodeFault {
                    node,
                    start,
                    end,
                    kind,
                });
                t_ms += window_ms;
            }
        }
        FaultSchedule::from_events(events)
    }

    /// The expected number of fault windows over the whole cluster: each
    /// node renews roughly every `mtbf + downtime` milliseconds.
    pub fn expected_faults(&self) -> f64 {
        self.nodes as f64 * self.duration_ms / (self.mtbf_ms + self.mean_downtime_ms)
    }
}

/// Draws one exponential gap with the given mean via inverse-CDF sampling.
fn exp_sample<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen();
    (-(1.0 - u).ln() * mean).max(MIN_GAP_MS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generation_is_deterministic_and_canonical() {
        let process = FaultProcess::crashes(4, 50.0, 10.0, 400.0).with_freeze_fraction(0.3);
        let a = process.generate(&mut StdRng::seed_from_u64(7));
        let b = process.generate(&mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        assert_ne!(a, process.generate(&mut StdRng::seed_from_u64(8)));
        assert!(!a.is_empty());
        assert!(a.validate().is_ok());
        // Both kinds appear at a 30% freeze fraction over ~20+ windows.
        assert!(a.events.iter().any(|e| e.kind == FaultKind::Crash));
        assert!(a.events.iter().any(|e| e.kind == FaultKind::Freeze));
        let horizon = NpuConfig::paper_default().millis_to_cycles(400.0);
        for event in &a.events {
            assert!(event.node < 4);
            assert!(event.start < horizon);
            assert!(event.end > event.start);
        }
    }

    #[test]
    fn fault_count_tracks_the_renewal_rate() {
        let process = FaultProcess::crashes(8, 40.0, 10.0, 2000.0);
        let mut total = 0usize;
        for seed in 0..4 {
            total += process.generate(&mut StdRng::seed_from_u64(seed)).len();
        }
        let mean = total as f64 / 4.0;
        let expected = process.expected_faults();
        assert!(
            (mean - expected).abs() < 0.25 * expected,
            "mean fault count {mean} vs expected {expected}"
        );
    }

    #[test]
    fn per_node_windows_never_overlap() {
        let process = FaultProcess::crashes(3, 5.0, 20.0, 500.0).with_freeze_fraction(0.5);
        let schedule = process.generate(&mut StdRng::seed_from_u64(42));
        assert!(schedule.validate().is_ok());
        let downtime = schedule.downtime_per_node(3);
        assert_eq!(downtime.len(), 3);
        assert!(downtime.iter().any(|d| *d > Cycles::ZERO));
        // Nodes past the process's range have no downtime.
        assert_eq!(schedule.downtime_per_node(5)[4], Cycles::ZERO);
    }

    #[test]
    fn from_events_sorts_into_canonical_order() {
        let schedule = FaultSchedule::from_events(vec![
            NodeFault {
                node: 1,
                start: Cycles::new(500),
                end: Cycles::new(600),
                kind: FaultKind::Freeze,
            },
            NodeFault {
                node: 0,
                start: Cycles::new(100),
                end: Cycles::new(900),
                kind: FaultKind::Crash,
            },
        ]);
        assert_eq!(schedule.events[0].node, 0);
        assert_eq!(schedule.len(), 2);
        assert!(!schedule.is_empty());
        assert!(FaultSchedule::none().is_empty());
        assert_eq!(schedule.events[0].duration(), Cycles::new(800));
        assert_eq!(FaultKind::Crash.to_string(), "crash");
    }

    #[test]
    #[should_panic(expected = "overlapping")]
    fn overlapping_windows_on_one_node_are_rejected() {
        let _ = FaultSchedule::from_events(vec![
            NodeFault {
                node: 0,
                start: Cycles::new(100),
                end: Cycles::new(900),
                kind: FaultKind::Crash,
            },
            NodeFault {
                node: 0,
                start: Cycles::new(500),
                end: Cycles::new(600),
                kind: FaultKind::Freeze,
            },
        ]);
    }

    #[test]
    fn validation_errors_cover_each_field() {
        let base = FaultProcess::crashes(2, 10.0, 5.0, 100.0);
        assert!(base.validate().is_ok());
        let cases = [
            FaultProcess {
                nodes: 0,
                ..base.clone()
            },
            FaultProcess {
                mtbf_ms: 0.0,
                ..base.clone()
            },
            FaultProcess {
                mean_downtime_ms: -1.0,
                ..base.clone()
            },
            FaultProcess {
                duration_ms: f64::NAN,
                ..base.clone()
            },
            FaultProcess {
                freeze_fraction: 1.5,
                ..base.clone()
            },
        ];
        for case in cases {
            assert!(case.validate().is_err(), "{case:?}");
        }
    }
}
