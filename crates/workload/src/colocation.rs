//! The Figure 1 co-location workload: GoogLeNet and ResNet sharing one
//! accelerator under the baseline NP-FCFS runtime.
//!
//! The paper measures this motivational experiment on a V100 GPU with
//! TensorRT Inference Server; the reproduction runs the same request pattern
//! on the simulated NPU. The quantity of interest is the *shape*: co-locating
//! the two models improves aggregate throughput (the accelerator never idles
//! between one model's requests) at the cost of higher average latency per
//! request.

use serde::{Deserialize, Serialize};

use dnn_models::ModelKind;
use npu_sim::{Cycles, NpuConfig};
use prema_core::{Priority, TaskId, TaskRequest};

/// Configuration of the co-location experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColocationConfig {
    /// Number of inference requests issued per model.
    pub requests_per_model: usize,
    /// Batch size of every request.
    pub batch: u64,
    /// Inter-arrival gap between consecutive requests of the same model, in
    /// milliseconds. A gap of zero reproduces a fully backlogged server.
    pub inter_arrival_ms: f64,
}

impl ColocationConfig {
    /// The default Figure 1 setup: 16 requests per model, batch 4, arriving
    /// every 5 ms. Each model's own request stream leaves the accelerator
    /// partially idle — that idle time is what co-location reclaims, which is
    /// exactly the effect Figure 1 demonstrates.
    pub fn paper_default() -> Self {
        ColocationConfig {
            requests_per_model: 16,
            batch: 4,
            inter_arrival_ms: 5.0,
        }
    }
}

impl Default for ColocationConfig {
    fn default() -> Self {
        ColocationConfig::paper_default()
    }
}

/// The request stream for a single model running in isolation.
pub fn isolated_stream(model: ModelKind, config: &ColocationConfig) -> Vec<TaskRequest> {
    let npu = NpuConfig::paper_default();
    let gap = npu.millis_to_cycles(config.inter_arrival_ms);
    (0..config.requests_per_model)
        .map(|i| {
            TaskRequest::new(TaskId(i as u64), model)
                .with_batch(config.batch)
                .with_priority(Priority::Medium)
                .with_arrival(gap * i as u64)
        })
        .collect()
}

/// The co-located request stream: interleaved GoogLeNet and ResNet requests
/// with the same arrival pattern as their isolated streams.
pub fn colocated_stream(config: &ColocationConfig) -> Vec<TaskRequest> {
    let npu = NpuConfig::paper_default();
    let gap = npu.millis_to_cycles(config.inter_arrival_ms);
    let mut requests = Vec::with_capacity(config.requests_per_model * 2);
    let mut id = 0u64;
    for i in 0..config.requests_per_model {
        let arrival: Cycles = gap * i as u64;
        for model in [ModelKind::CnnGoogLeNet, ModelKind::ResNet50] {
            requests.push(
                TaskRequest::new(TaskId(id), model)
                    .with_batch(config.batch)
                    .with_priority(Priority::Medium)
                    .with_arrival(arrival),
            );
            id += 1;
        }
    }
    requests
}

/// Throughput (inferences per second) and mean latency (milliseconds) of a
/// finished run, as plotted in Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColocationResult {
    /// Completed inferences per second of wall-clock simulation time.
    pub throughput_inferences_per_sec: f64,
    /// Mean request latency (arrival to completion) in milliseconds.
    pub mean_latency_ms: f64,
}

/// Summarizes an engine outcome into the Figure 1 metrics.
pub fn summarize(records: &[prema_core::TaskRecord], npu: &NpuConfig) -> ColocationResult {
    assert!(!records.is_empty(), "at least one record is required");
    let makespan = records
        .iter()
        .map(|r| r.completion)
        .max()
        .expect("records are non-empty");
    let makespan_secs = npu.cycles_to_millis(makespan) / 1e3;
    let mean_latency_ms = records
        .iter()
        .map(|r| npu.cycles_to_millis(r.turnaround()))
        .sum::<f64>()
        / records.len() as f64;
    ColocationResult {
        throughput_inferences_per_sec: if makespan_secs > 0.0 {
            records.len() as f64 / makespan_secs
        } else {
            0.0
        },
        mean_latency_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prema_core::{NpuSimulator, SchedulerConfig};

    fn npu() -> NpuConfig {
        NpuConfig::paper_default()
    }

    fn small_config() -> ColocationConfig {
        ColocationConfig {
            requests_per_model: 4,
            batch: 1,
            inter_arrival_ms: 0.0,
        }
    }

    #[test]
    fn streams_have_the_expected_sizes() {
        let config = small_config();
        assert_eq!(isolated_stream(ModelKind::ResNet50, &config).len(), 4);
        let colocated = colocated_stream(&config);
        assert_eq!(colocated.len(), 8);
        let googlenet = colocated
            .iter()
            .filter(|r| r.model == ModelKind::CnnGoogLeNet)
            .count();
        assert_eq!(googlenet, 4);
    }

    #[test]
    fn colocation_improves_throughput_but_hurts_latency() {
        let config = small_config();
        let sim = NpuSimulator::new(npu(), SchedulerConfig::np_fcfs());

        let run = |requests: Vec<TaskRequest>| {
            let prepared = sim.prepare(&requests);
            let outcome = sim.run(&prepared);
            summarize(&outcome.records, &npu())
        };

        let iso_gn = run(isolated_stream(ModelKind::CnnGoogLeNet, &config));
        let iso_rn = run(isolated_stream(ModelKind::ResNet50, &config));
        let colocated = run(colocated_stream(&config));

        // Aggregate isolated throughput is the average of the two separate
        // servers; co-location on one NPU serves both streams with one
        // device, so per-device throughput (inferences/s) goes up relative to
        // the slower stream while mean latency rises.
        let worst_isolated_latency = iso_gn.mean_latency_ms.max(iso_rn.mean_latency_ms);
        assert!(
            colocated.mean_latency_ms > worst_isolated_latency,
            "co-located latency {} should exceed isolated {}",
            colocated.mean_latency_ms,
            worst_isolated_latency
        );
        let min_isolated_throughput = iso_gn
            .throughput_inferences_per_sec
            .min(iso_rn.throughput_inferences_per_sec);
        assert!(
            colocated.throughput_inferences_per_sec > min_isolated_throughput,
            "co-located throughput {} should exceed the slower isolated stream {}",
            colocated.throughput_inferences_per_sec,
            min_isolated_throughput
        );
    }

    #[test]
    fn default_config_matches_paper_setup() {
        let config = ColocationConfig::default();
        assert_eq!(config.requests_per_model, 16);
        assert_eq!(config.batch, 4);
    }

    #[test]
    #[should_panic(expected = "at least one record")]
    fn summarize_requires_records() {
        let _ = summarize(&[], &npu());
    }
}
