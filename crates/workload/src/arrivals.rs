//! Open-loop arrival processes for the cluster serving layer.
//!
//! The Section III workload dispatches a *fixed batch* of tasks inside a
//! finite window — the right methodology for reproducing the paper's
//! single-NPU figures, but not for characterizing a serving system under
//! sustained load. This module provides the standard open-loop alternative:
//! requests are *streamed* over a configurable duration by a stochastic
//! arrival process that does not react to the system's state (offered load
//! is fixed, as in server/HPC sustained-throughput characterization).
//!
//! Three processes are implemented:
//!
//! * [`ArrivalProcess::Poisson`] — homogeneous Poisson arrivals (i.i.d.
//!   exponential inter-arrival times), the memoryless baseline.
//! * [`ArrivalProcess::Bursty`] — a Markov-modulated on/off (interrupted
//!   Poisson) process: exponential on/off sojourn times, Poisson arrivals
//!   at the on-rate while on, silence while off. Same mean rate as a
//!   Poisson process of matching intensity, far heavier short-term bursts.
//! * [`ArrivalProcess::Diurnal`] — a deterministic-trace-like process whose
//!   instantaneous rate follows a raised-cosine day curve between a trough
//!   and a peak over one period, sampled by Lewis–Shedler thinning.
//!
//! Per-request fields (model, batch, actual sequence lengths) are drawn by
//! the same shared helper as the finite-window generator; priorities come
//! from a configurable per-priority rate mix instead of a uniform pool.
//!
//! Streams come in two forms: [`generate_open_loop`] materializes the whole
//! window at once (the open-loop sweep's shape), while [`OpenLoopIter`]
//! yields requests one at a time so a closed-loop driver can poll the
//! stream incrementally as its global clock advances — collecting the
//! iterator is bit-identical to the materialized form.
//!
//! All generation is a pure function of the seeded RNG, so a cluster sweep
//! replaying the same seed sees bit-identical request streams.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dnn_models::{ModelKind, ALL_EVAL_MODELS};
use npu_sim::NpuConfig;
use prema_core::{Priority, TaskId, TaskRequest};

use crate::generator::{sample_request, WorkloadSpec};

/// Floor on sampled exponential gaps, in milliseconds. `-ln(1 - u)` is zero
/// when the RNG returns exactly `u == 0`; flooring the gap keeps every loop
/// strictly advancing without measurably distorting the distribution.
const MIN_GAP_MS: f64 = 1e-9;

/// An open-loop arrival process: the distribution of request arrival times
/// over the generation window. Rates are in requests per millisecond.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals.
    Poisson {
        /// Mean arrival rate (requests per millisecond).
        rate_per_ms: f64,
    },
    /// Markov-modulated on/off (interrupted Poisson) arrivals: the process
    /// alternates between an *on* state with Poisson arrivals at
    /// `on_rate_per_ms` and a silent *off* state; both sojourn times are
    /// exponential.
    Bursty {
        /// Arrival rate while the source is on (requests per millisecond).
        on_rate_per_ms: f64,
        /// Mean duration of an on (burst) period, in milliseconds.
        mean_on_ms: f64,
        /// Mean duration of an off (silent) period, in milliseconds.
        mean_off_ms: f64,
    },
    /// Diurnal trace: the instantaneous rate follows a raised-cosine curve
    /// from `trough_rate_per_ms` (at the start of each period) up to
    /// `peak_rate_per_ms` (mid-period) and back, sampled by thinning.
    Diurnal {
        /// Rate at the bottom of the day curve (requests per millisecond).
        trough_rate_per_ms: f64,
        /// Rate at the top of the day curve (requests per millisecond).
        peak_rate_per_ms: f64,
        /// Length of one full day curve, in milliseconds.
        period_ms: f64,
    },
}

impl ArrivalProcess {
    /// The long-run mean arrival rate of the process, in requests per
    /// millisecond. All three processes can be calibrated to the same
    /// offered load through this value.
    pub fn mean_rate_per_ms(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_ms } => rate_per_ms,
            ArrivalProcess::Bursty {
                on_rate_per_ms,
                mean_on_ms,
                mean_off_ms,
            } => on_rate_per_ms * mean_on_ms / (mean_on_ms + mean_off_ms),
            ArrivalProcess::Diurnal {
                trough_rate_per_ms,
                peak_rate_per_ms,
                ..
            } => 0.5 * (trough_rate_per_ms + peak_rate_per_ms),
        }
    }

    /// Validates the process parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        let positive = |value: f64, what: &str| -> Result<(), String> {
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("{what} must be positive and finite"));
            }
            Ok(())
        };
        match *self {
            ArrivalProcess::Poisson { rate_per_ms } => positive(rate_per_ms, "Poisson rate"),
            ArrivalProcess::Bursty {
                on_rate_per_ms,
                mean_on_ms,
                mean_off_ms,
            } => {
                positive(on_rate_per_ms, "bursty on-rate")?;
                positive(mean_on_ms, "mean on duration")?;
                positive(mean_off_ms, "mean off duration")
            }
            ArrivalProcess::Diurnal {
                trough_rate_per_ms,
                peak_rate_per_ms,
                period_ms,
            } => {
                if !trough_rate_per_ms.is_finite() || trough_rate_per_ms < 0.0 {
                    return Err("diurnal trough rate must be non-negative and finite".into());
                }
                positive(peak_rate_per_ms, "diurnal peak rate")?;
                if peak_rate_per_ms < trough_rate_per_ms {
                    return Err("diurnal peak rate must be at least the trough rate".into());
                }
                positive(period_ms, "diurnal period")
            }
        }
    }

    /// Samples the process's arrival times inside `[0, duration_ms)`, in
    /// ascending order.
    pub fn arrival_times<R: Rng + ?Sized>(&self, duration_ms: f64, rng: &mut R) -> Vec<f64> {
        let mut times = Vec::new();
        match *self {
            ArrivalProcess::Poisson { rate_per_ms } => {
                let mean_gap = 1.0 / rate_per_ms;
                let mut t = exp_sample(mean_gap, rng);
                while t < duration_ms {
                    times.push(t);
                    t += exp_sample(mean_gap, rng);
                }
            }
            ArrivalProcess::Bursty {
                on_rate_per_ms,
                mean_on_ms,
                mean_off_ms,
            } => {
                let mean_gap = 1.0 / on_rate_per_ms;
                let mut t = 0.0;
                let mut on = true;
                while t < duration_ms {
                    if on {
                        let burst_end = (t + exp_sample(mean_on_ms, rng)).min(duration_ms);
                        let mut next = t + exp_sample(mean_gap, rng);
                        while next < burst_end {
                            times.push(next);
                            next += exp_sample(mean_gap, rng);
                        }
                        t = burst_end;
                    } else {
                        t += exp_sample(mean_off_ms, rng);
                    }
                    on = !on;
                }
            }
            ArrivalProcess::Diurnal {
                trough_rate_per_ms,
                peak_rate_per_ms,
                period_ms,
            } => {
                // Lewis–Shedler thinning: candidate arrivals at the peak
                // rate, each accepted with probability rate(t) / peak.
                let mean_gap = 1.0 / peak_rate_per_ms;
                let mut t = exp_sample(mean_gap, rng);
                while t < duration_ms {
                    let rate = diurnal_rate(trough_rate_per_ms, peak_rate_per_ms, period_ms, t);
                    if rng.gen::<f64>() < rate / peak_rate_per_ms {
                        times.push(t);
                    }
                    t += exp_sample(mean_gap, rng);
                }
            }
        }
        times
    }
}

/// The diurnal instantaneous rate at time `t_ms`: a raised cosine from the
/// trough (period start) to the peak (mid-period) and back.
fn diurnal_rate(trough: f64, peak: f64, period_ms: f64, t_ms: f64) -> f64 {
    let phase = 2.0 * std::f64::consts::PI * (t_ms / period_ms);
    trough + (peak - trough) * 0.5 * (1.0 - phase.cos())
}

/// Draws one exponential gap with the given mean via inverse-CDF sampling.
fn exp_sample<R: Rng + ?Sized>(mean: f64, rng: &mut R) -> f64 {
    let u: f64 = rng.gen();
    (-(1.0 - u).ln() * mean).max(MIN_GAP_MS)
}

/// Configuration of an open-loop request stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenLoopConfig {
    /// The arrival process.
    pub process: ArrivalProcess,
    /// Length of the generation window, in milliseconds. Requests arrive in
    /// `[0, duration_ms)`; the simulation then runs until all are served.
    pub duration_ms: f64,
    /// The pool of DNNs requests are drawn from (uniformly).
    pub models: Vec<ModelKind>,
    /// The batch sizes requests are drawn from (uniformly).
    pub batch_sizes: Vec<u64>,
    /// Per-priority rate mix: each arrival is assigned a priority with
    /// probability proportional to its weight (weights need not sum to 1).
    pub priority_mix: Vec<(Priority, f64)>,
}

impl OpenLoopConfig {
    /// A Poisson stream over the eight evaluation DNNs at batch 1 with a
    /// uniform low/medium/high priority mix — the cluster sweep's default.
    pub fn poisson(rate_per_ms: f64, duration_ms: f64) -> Self {
        OpenLoopConfig {
            process: ArrivalProcess::Poisson { rate_per_ms },
            duration_ms,
            models: ALL_EVAL_MODELS.to_vec(),
            batch_sizes: vec![1],
            priority_mix: vec![
                (Priority::Low, 1.0),
                (Priority::Medium, 1.0),
                (Priority::High, 1.0),
            ],
        }
    }

    /// Replaces the arrival process, keeping the request mix.
    pub fn with_process(mut self, process: ArrivalProcess) -> Self {
        self.process = process;
        self
    }

    /// The expected number of requests the stream generates.
    pub fn expected_requests(&self) -> f64 {
        self.process.mean_rate_per_ms() * self.duration_ms
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.process.validate()?;
        if !self.duration_ms.is_finite() || self.duration_ms <= 0.0 {
            return Err("duration must be positive and finite".into());
        }
        if self.models.is_empty() {
            return Err("model pool must not be empty".into());
        }
        if self.batch_sizes.is_empty() || self.batch_sizes.contains(&0) {
            return Err("batch sizes must be non-empty and non-zero".into());
        }
        if self.priority_mix.is_empty() {
            return Err("priority mix must not be empty".into());
        }
        if self
            .priority_mix
            .iter()
            .any(|(_, w)| !w.is_finite() || *w < 0.0)
        {
            return Err("priority weights must be non-negative and finite".into());
        }
        if self.priority_mix.iter().map(|(_, w)| w).sum::<f64>() <= 0.0 {
            return Err("priority weights must not all be zero".into());
        }
        Ok(())
    }
}

/// Draws a priority from the weighted mix.
fn pick_priority<R: Rng + ?Sized>(
    mix: &[(Priority, f64)],
    total_weight: f64,
    rng: &mut R,
) -> Priority {
    let mut draw = rng.gen::<f64>() * total_weight;
    for &(priority, weight) in mix {
        if draw < weight {
            return priority;
        }
        draw -= weight;
    }
    mix.last().expect("priority mix is non-empty").0
}

/// An incrementally polled open-loop request stream: an [`Iterator`] over
/// [`prema_core::TaskRequest`]s in arrival order with dense IDs `0..n`.
///
/// The arrival *times* are drawn from the process up front (they are one
/// contiguous RNG consumption, exactly as [`generate_open_loop`] consumes
/// them), but each request's fields — model, batch, priority, sequence
/// lengths — are sampled lazily on [`Iterator::next`]. A closed-loop driver
/// can therefore pull requests one global event at a time instead of
/// materializing the whole stream, and collecting the iterator is
/// bit-identical to [`generate_open_loop`] on the same RNG state.
#[derive(Debug)]
pub struct OpenLoopIter<'a, R: Rng + ?Sized> {
    times: std::vec::IntoIter<f64>,
    next_id: u64,
    config: &'a OpenLoopConfig,
    total_weight: f64,
    timeline: NpuConfig,
    rng: &'a mut R,
}

impl<'a, R: Rng + ?Sized> OpenLoopIter<'a, R> {
    /// Draws the stream's arrival times and returns the lazy per-request
    /// iterator.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: &'a OpenLoopConfig, rng: &'a mut R) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid OpenLoopConfig: {msg}");
        }
        let total_weight: f64 = config.priority_mix.iter().map(|(_, w)| w).sum();
        let times = config.process.arrival_times(config.duration_ms, rng);
        OpenLoopIter {
            times: times.into_iter(),
            next_id: 0,
            config,
            total_weight,
            timeline: NpuConfig::paper_default(),
            rng,
        }
    }
}

impl<R: Rng + ?Sized> Iterator for OpenLoopIter<'_, R> {
    type Item = TaskRequest;

    fn next(&mut self) -> Option<Self::Item> {
        let t_ms = self.times.next()?;
        let arrival = self.timeline.millis_to_cycles(t_ms);
        let id = TaskId(self.next_id);
        self.next_id += 1;
        Some(sample_request(
            id,
            &self.config.models,
            &self.config.batch_sizes,
            self.rng,
            |rng| pick_priority(&self.config.priority_mix, self.total_weight, rng),
            |_| arrival,
        ))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.times.size_hint()
    }
}

impl<R: Rng + ?Sized> ExactSizeIterator for OpenLoopIter<'_, R> {}

/// Generates one open-loop request stream: arrival times from the configured
/// process, per-request fields from the same shared sampler as the
/// finite-window generator, priorities from the weighted mix. Requests are
/// returned in arrival order with dense IDs `0..n` (the collected form of
/// [`OpenLoopIter`]).
///
/// Arrival times are converted to cycles against the Table I NPU frequency,
/// like the finite-window generator, so streams are reproducible
/// independent of the simulated NPU configuration.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn generate_open_loop<R: Rng + ?Sized>(config: &OpenLoopConfig, rng: &mut R) -> WorkloadSpec {
    WorkloadSpec {
        requests: OpenLoopIter::new(config, rng).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_sim::Cycles;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn count_over(process: ArrivalProcess, duration_ms: f64, seed: u64) -> usize {
        let mut rng = StdRng::seed_from_u64(seed);
        process.arrival_times(duration_ms, &mut rng).len()
    }

    #[test]
    fn poisson_hits_its_mean_rate() {
        let process = ArrivalProcess::Poisson { rate_per_ms: 2.0 };
        let expected = 2.0 * 2000.0;
        let mut total = 0usize;
        for seed in 0..4 {
            total += count_over(process, 2000.0, seed);
        }
        let mean = total as f64 / 4.0;
        assert!(
            (mean - expected).abs() < 0.1 * expected,
            "mean count {mean} vs expected {expected}"
        );
    }

    #[test]
    fn bursty_matches_its_duty_cycled_mean_rate() {
        let process = ArrivalProcess::Bursty {
            on_rate_per_ms: 4.0,
            mean_on_ms: 5.0,
            mean_off_ms: 15.0,
        };
        assert!((process.mean_rate_per_ms() - 1.0).abs() < 1e-12);
        let expected = process.mean_rate_per_ms() * 4000.0;
        let mut total = 0usize;
        for seed in 0..4 {
            total += count_over(process, 4000.0, seed);
        }
        let mean = total as f64 / 4.0;
        assert!(
            (mean - expected).abs() < 0.25 * expected,
            "mean count {mean} vs expected {expected}"
        );
    }

    #[test]
    fn diurnal_rate_swings_between_trough_and_peak() {
        let (trough, peak, period) = (0.5, 4.0, 1000.0);
        assert!((diurnal_rate(trough, peak, period, 0.0) - trough).abs() < 1e-12);
        assert!((diurnal_rate(trough, peak, period, 500.0) - peak).abs() < 1e-9);
        let process = ArrivalProcess::Diurnal {
            trough_rate_per_ms: trough,
            peak_rate_per_ms: peak,
            period_ms: period,
        };
        assert!((process.mean_rate_per_ms() - 2.25).abs() < 1e-12);
        // Arrivals concentrate around the mid-period peak.
        let mut rng = StdRng::seed_from_u64(9);
        let times = process.arrival_times(period, &mut rng);
        let mid = times.iter().filter(|t| (250.0..750.0).contains(*t)).count();
        assert!(
            mid as f64 > 0.55 * times.len() as f64,
            "{mid} of {} arrivals in the peak half",
            times.len()
        );
    }

    #[test]
    fn arrival_times_are_sorted_and_in_window() {
        for process in [
            ArrivalProcess::Poisson { rate_per_ms: 1.5 },
            ArrivalProcess::Bursty {
                on_rate_per_ms: 6.0,
                mean_on_ms: 3.0,
                mean_off_ms: 9.0,
            },
            ArrivalProcess::Diurnal {
                trough_rate_per_ms: 0.2,
                peak_rate_per_ms: 3.0,
                period_ms: 50.0,
            },
        ] {
            let mut rng = StdRng::seed_from_u64(17);
            let times = process.arrival_times(120.0, &mut rng);
            assert!(!times.is_empty());
            assert!(times.windows(2).all(|w| w[0] <= w[1]));
            assert!(times.iter().all(|t| (0.0..120.0).contains(t)));
        }
    }

    #[test]
    fn open_loop_generation_is_deterministic_and_ordered() {
        let config = OpenLoopConfig::poisson(1.0, 60.0);
        let a = generate_open_loop(&config, &mut StdRng::seed_from_u64(5));
        let b = generate_open_loop(&config, &mut StdRng::seed_from_u64(5));
        assert_eq!(a, b);
        let c = generate_open_loop(&config, &mut StdRng::seed_from_u64(6));
        assert_ne!(a, c);
        // Dense IDs in arrival order, arrivals within the window.
        let window = NpuConfig::paper_default().millis_to_cycles(60.0);
        for (i, request) in a.requests.iter().enumerate() {
            assert_eq!(request.id.0, i as u64);
            assert!(request.arrival < window);
            if i > 0 {
                assert!(request.arrival >= a.requests[i - 1].arrival);
            }
        }
    }

    #[test]
    fn incremental_iterator_matches_the_materialized_stream() {
        for (rate, duration, seed) in [(1.0, 60.0, 5u64), (2.5, 120.0, 0xFEED)] {
            let config = OpenLoopConfig::poisson(rate, duration);
            let materialized = generate_open_loop(&config, &mut StdRng::seed_from_u64(seed));
            let mut rng = StdRng::seed_from_u64(seed);
            let mut iter = OpenLoopIter::new(&config, &mut rng);
            assert_eq!(iter.len(), materialized.requests.len());
            let mut streamed = Vec::new();
            while let Some(request) = iter.next() {
                // The iterator advertises exactly the remaining count.
                assert_eq!(iter.len(), materialized.requests.len() - streamed.len() - 1);
                streamed.push(request);
            }
            assert_eq!(streamed, materialized.requests);
        }
    }

    #[test]
    fn priority_mix_skews_the_stream() {
        let mut config = OpenLoopConfig::poisson(2.0, 500.0);
        config.priority_mix = vec![(Priority::Low, 1.0), (Priority::High, 9.0)];
        let spec = generate_open_loop(&config, &mut StdRng::seed_from_u64(8));
        let high = spec.with_priority(Priority::High).len();
        let low = spec.with_priority(Priority::Low).len();
        assert!(spec.with_priority(Priority::Medium).is_empty());
        assert!(
            high > 5 * low.max(1),
            "high {high} should dominate low {low} under a 9:1 mix"
        );
    }

    #[test]
    fn rnn_requests_carry_sampled_sequences() {
        let spec = generate_open_loop(
            &OpenLoopConfig::poisson(2.0, 100.0),
            &mut StdRng::seed_from_u64(3),
        );
        assert!(spec.requests.iter().any(|r| r.model.is_rnn()));
        for request in &spec.requests {
            if request.model.is_rnn() {
                assert!(request.seq.input_len > 0 && request.seq.output_len > 0);
            }
            assert!(request.arrival >= Cycles::ZERO);
        }
    }

    #[test]
    fn expected_requests_matches_rate_times_duration() {
        let config = OpenLoopConfig::poisson(1.5, 200.0);
        assert!((config.expected_requests() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn validation_errors_cover_each_field() {
        let base = OpenLoopConfig::poisson(1.0, 50.0);
        assert!(base.validate().is_ok());
        let cases = [
            OpenLoopConfig {
                process: ArrivalProcess::Poisson { rate_per_ms: 0.0 },
                ..base.clone()
            },
            OpenLoopConfig {
                process: ArrivalProcess::Bursty {
                    on_rate_per_ms: 1.0,
                    mean_on_ms: 0.0,
                    mean_off_ms: 1.0,
                },
                ..base.clone()
            },
            OpenLoopConfig {
                process: ArrivalProcess::Diurnal {
                    trough_rate_per_ms: 2.0,
                    peak_rate_per_ms: 1.0,
                    period_ms: 10.0,
                },
                ..base.clone()
            },
            OpenLoopConfig {
                duration_ms: 0.0,
                ..base.clone()
            },
            OpenLoopConfig {
                models: vec![],
                ..base.clone()
            },
            OpenLoopConfig {
                batch_sizes: vec![0],
                ..base.clone()
            },
            OpenLoopConfig {
                priority_mix: vec![],
                ..base.clone()
            },
            OpenLoopConfig {
                priority_mix: vec![(Priority::Low, 0.0)],
                ..base.clone()
            },
            OpenLoopConfig {
                priority_mix: vec![(Priority::Low, -1.0)],
                ..base.clone()
            },
        ];
        for case in cases {
            assert!(case.validate().is_err(), "{case:?}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid OpenLoopConfig")]
    fn invalid_config_rejected() {
        let config = OpenLoopConfig {
            duration_ms: -1.0,
            ..OpenLoopConfig::poisson(1.0, 10.0)
        };
        let _ = generate_open_loop(&config, &mut StdRng::seed_from_u64(1));
    }
}
