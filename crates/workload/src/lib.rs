//! Multi-tasked DNN workload construction (Section III of the PREMA paper)
//! and the synthetic characterization data the reproduction substitutes for
//! the paper's proprietary profiling sources.
//!
//! * [`generator`] — the Section III methodology: randomly select N inference
//!   tasks among the eight evaluation DNNs, dispatch them at uniformly random
//!   times, and assign each a random low/medium/high priority.
//! * [`arrivals`] — open-loop arrival processes (Poisson, bursty on/off,
//!   diurnal-trace) that stream requests over a configurable duration with a
//!   per-priority rate mix, feeding the multi-NPU cluster serving layer.
//! * [`faults`] — seeded node-fault processes (crash / freeze / degrade
//!   renewal chains per node) whose schedules drive the cluster's
//!   fault-injection, straggler and recovery machinery.
//! * [`seqlen`] — synthetic input→output sequence-length characterization for
//!   the seq2seq applications (the Figure 9 substitution), producing both the
//!   profiled sample sets that feed [`prema_predictor::SeqLenTable`] and the
//!   per-request actual output lengths.
//! * [`prepare`] — turns a workload specification into the
//!   [`prema_core::PreparedTask`]s the engine consumes, attaching predictor
//!   estimates.
//! * [`colocation`] — the Figure 1 co-location workload (GoogLeNet + ResNet
//!   request streams).
//! * [`microbench`] — the two-task preemption microbenchmarks of Figures 5
//!   and 6 (uniform-random preemption points, all models × batch sizes).
//!
//! # Example
//!
//! ```
//! use prema_workload::generator::{WorkloadConfig, generate_workload};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let spec = generate_workload(&WorkloadConfig::paper_default(), &mut rng);
//! assert_eq!(spec.requests.len(), 8);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrivals;
pub mod colocation;
pub mod faults;
pub mod generator;
pub mod microbench;
pub mod prepare;
pub mod seqlen;

pub use arrivals::{generate_open_loop, ArrivalProcess, OpenLoopConfig, OpenLoopIter};
pub use faults::{
    FaultDomainError, FaultKind, FaultProcess, FaultSchedule, FaultScheduleError,
    InterconnectError, LinkFault, LinkFaultKind, LinkFaultProcess, NodeFault,
};
pub use generator::{generate_workload, WorkloadConfig, WorkloadSpec};
pub use prepare::{prepare_workload, PreparedWorkload};
pub use seqlen::SeqLenCharacterization;
