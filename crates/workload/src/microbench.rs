//! Two-task preemption microbenchmarks (Section IV-D, Figures 5 and 6).
//!
//! A low-priority task starts first; a high-priority task is dispatched at a
//! uniformly random point of the low-priority task's isolated execution and
//! preempts it (under P-HPF) with the mechanism under study. The figures
//! report, per preempted/preempting model and batch size: the preemption
//! latency, the preempting task's waiting time, and the resulting STP / NTT
//! relative to NP-FCFS.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dnn_models::{ModelKind, SeqSpec};
use npu_sim::{Cycles, NpuConfig};
use prema_core::plan::ExecutionPlan;
use prema_core::{Priority, TaskId, TaskRequest};

use crate::seqlen::{sample_input_len, sample_output_len};

/// The batch sizes swept in Figures 5 and 6.
pub const BATCH_SIZES: [u64; 3] = [1, 4, 16];

/// One two-task preemption scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreemptionScenario {
    /// The low-priority task that is running when the preemption request
    /// arrives.
    pub victim: TaskRequest,
    /// The high-priority task that triggers the preemption.
    pub preemptor: TaskRequest,
}

impl PreemptionScenario {
    /// The two requests in dispatch order.
    pub fn requests(&self) -> [TaskRequest; 2] {
        [self.victim, self.preemptor]
    }
}

/// Builds one scenario: `victim_model` (low priority, batch `victim_batch`)
/// starts at time zero; `preemptor_model` (high priority, batch
/// `preemptor_batch`) arrives at a uniformly random fraction of the victim's
/// isolated execution time.
#[allow(clippy::too_many_arguments)]
pub fn scenario<R: Rng + ?Sized>(
    victim_model: ModelKind,
    victim_batch: u64,
    preemptor_model: ModelKind,
    preemptor_batch: u64,
    npu: &NpuConfig,
    rng: &mut R,
) -> PreemptionScenario {
    let victim_seq = seq_for(victim_model, rng);
    let preemptor_seq = seq_for(preemptor_model, rng);

    let victim = TaskRequest::new(TaskId(0), victim_model)
        .with_batch(victim_batch)
        .with_priority(Priority::Low)
        .with_seq(victim_seq);

    // Uniform random preemption point across the victim's execution.
    let victim_isolated =
        ExecutionPlan::compile(victim_model, victim_batch, victim_seq, npu).total_cycles();
    let fraction: f64 = rng.gen_range(0.05..0.95);
    let arrival = Cycles::new((victim_isolated.get() as f64 * fraction) as u64);

    let preemptor = TaskRequest::new(TaskId(1), preemptor_model)
        .with_batch(preemptor_batch)
        .with_priority(Priority::High)
        .with_seq(preemptor_seq)
        .with_arrival(arrival);

    PreemptionScenario { victim, preemptor }
}

fn seq_for<R: Rng + ?Sized>(model: ModelKind, rng: &mut R) -> SeqSpec {
    if model.is_rnn() {
        let input_len = sample_input_len(model, rng);
        SeqSpec::new(input_len, sample_output_len(model, input_len, rng))
    } else {
        SeqSpec::none()
    }
}

/// Builds the Figure 5 sweep for one *victim* model and batch size: the
/// preemptor is drawn randomly among the eight DNNs and the three batch
/// sizes, `repeats` times.
pub fn victim_sweep<R: Rng + ?Sized>(
    victim_model: ModelKind,
    victim_batch: u64,
    repeats: usize,
    npu: &NpuConfig,
    rng: &mut R,
) -> Vec<PreemptionScenario> {
    (0..repeats)
        .map(|_| {
            let preemptor_model =
                dnn_models::ALL_EVAL_MODELS[rng.gen_range(0..dnn_models::ALL_EVAL_MODELS.len())];
            let preemptor_batch = BATCH_SIZES[rng.gen_range(0..BATCH_SIZES.len())];
            scenario(
                victim_model,
                victim_batch,
                preemptor_model,
                preemptor_batch,
                npu,
                rng,
            )
        })
        .collect()
}

/// Builds the Figure 6 sweep for one *preemptor* model and batch size: the
/// victim is drawn randomly among the eight DNNs and the three batch sizes.
pub fn preemptor_sweep<R: Rng + ?Sized>(
    preemptor_model: ModelKind,
    preemptor_batch: u64,
    repeats: usize,
    npu: &NpuConfig,
    rng: &mut R,
) -> Vec<PreemptionScenario> {
    (0..repeats)
        .map(|_| {
            let victim_model =
                dnn_models::ALL_EVAL_MODELS[rng.gen_range(0..dnn_models::ALL_EVAL_MODELS.len())];
            let victim_batch = BATCH_SIZES[rng.gen_range(0..BATCH_SIZES.len())];
            scenario(
                victim_model,
                victim_batch,
                preemptor_model,
                preemptor_batch,
                npu,
                rng,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn npu() -> NpuConfig {
        NpuConfig::paper_default()
    }

    #[test]
    fn scenario_orders_victim_before_preemptor() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = scenario(
            ModelKind::CnnVggNet,
            1,
            ModelKind::CnnAlexNet,
            1,
            &npu(),
            &mut rng,
        );
        assert_eq!(s.victim.arrival, Cycles::ZERO);
        assert!(s.preemptor.arrival > Cycles::ZERO);
        assert_eq!(s.victim.priority, Priority::Low);
        assert_eq!(s.preemptor.priority, Priority::High);
        assert_eq!(s.requests()[0].id, TaskId(0));
        assert_eq!(s.requests()[1].id, TaskId(1));
    }

    #[test]
    fn preemption_point_is_within_the_victims_execution() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = npu();
        for _ in 0..10 {
            let s = scenario(
                ModelKind::CnnAlexNet,
                4,
                ModelKind::CnnGoogLeNet,
                1,
                &c,
                &mut rng,
            );
            let victim_isolated =
                ExecutionPlan::compile(ModelKind::CnnAlexNet, 4, SeqSpec::none(), &c)
                    .total_cycles();
            assert!(s.preemptor.arrival < victim_isolated);
        }
    }

    #[test]
    fn sweeps_produce_the_requested_number_of_scenarios() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = npu();
        let victims = victim_sweep(ModelKind::CnnMobileNet, 4, 5, &c, &mut rng);
        assert_eq!(victims.len(), 5);
        assert!(victims
            .iter()
            .all(|s| s.victim.model == ModelKind::CnnMobileNet && s.victim.batch == 4));

        let preemptors = preemptor_sweep(ModelKind::RnnSentiment, 1, 5, &c, &mut rng);
        assert_eq!(preemptors.len(), 5);
        assert!(preemptors
            .iter()
            .all(|s| s.preemptor.model == ModelKind::RnnSentiment && s.preemptor.batch == 1));
    }

    #[test]
    fn rnn_participants_get_sequence_lengths() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = scenario(
            ModelKind::RnnTranslation1,
            1,
            ModelKind::RnnSpeech,
            1,
            &npu(),
            &mut rng,
        );
        assert!(s.victim.seq.input_len > 0 && s.victim.seq.output_len > 0);
        assert!(s.preemptor.seq.input_len > 0 && s.preemptor.seq.output_len > 0);
    }
}
