//! Multi-tasked workload generation following the Section III methodology:
//! randomly select N inference tasks among the eight evaluation DNNs, assume
//! a uniform random distribution of dispatch times, and assign each task a
//! random priority among low / medium / high.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use dnn_models::{ModelKind, SeqSpec, ALL_EVAL_MODELS};
use npu_sim::{Cycles, NpuConfig};
use prema_core::{Priority, TaskId, TaskRequest};

use crate::seqlen::{sample_input_len, sample_output_len};

/// Configuration of the workload generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Number of co-scheduled inference tasks (the paper's evaluation uses 8).
    pub task_count: usize,
    /// The pool of DNNs tasks are drawn from.
    pub models: Vec<ModelKind>,
    /// The batch sizes tasks are drawn from (uniformly).
    pub batch_sizes: Vec<u64>,
    /// The priorities tasks are drawn from (uniformly).
    pub priorities: Vec<Priority>,
    /// Dispatch-time window in milliseconds: every task arrives at a
    /// uniformly random time inside `[0, dispatch_window_ms)`.
    pub dispatch_window_ms: f64,
}

impl WorkloadConfig {
    /// The Section VI workload: 8 tasks drawn from the eight evaluation DNNs,
    /// uniform random dispatch over a 20 ms window, random priorities, batch
    /// size 1.
    pub fn paper_default() -> Self {
        WorkloadConfig {
            task_count: 8,
            models: ALL_EVAL_MODELS.to_vec(),
            batch_sizes: vec![1],
            priorities: Priority::ALL.to_vec(),
            dispatch_window_ms: 20.0,
        }
    }

    /// Same as [`WorkloadConfig::paper_default`] but with mixed batch sizes
    /// (1 / 4 / 16), used by the batch-size sensitivity study.
    pub fn mixed_batch() -> Self {
        WorkloadConfig {
            batch_sizes: vec![1, 4, 16],
            ..WorkloadConfig::paper_default()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.task_count == 0 {
            return Err("task count must be non-zero".into());
        }
        if self.models.is_empty() {
            return Err("model pool must not be empty".into());
        }
        if self.batch_sizes.is_empty() || self.batch_sizes.contains(&0) {
            return Err("batch sizes must be non-empty and non-zero".into());
        }
        if self.priorities.is_empty() {
            return Err("priority pool must not be empty".into());
        }
        if self.dispatch_window_ms.is_nan() || self.dispatch_window_ms < 0.0 {
            return Err("dispatch window must be non-negative".into());
        }
        Ok(())
    }
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig::paper_default()
    }
}

/// A generated multi-tasked workload: the requests to dispatch to one NPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// The generated requests, in task-ID order.
    pub requests: Vec<TaskRequest>,
}

impl WorkloadSpec {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The requests that carry the given priority.
    pub fn with_priority(&self, priority: Priority) -> Vec<&TaskRequest> {
        self.requests
            .iter()
            .filter(|r| r.priority == priority)
            .collect()
    }
}

/// Samples a dispatch time uniformly inside `[0, window_cycles)`.
///
/// A zero-cycle window degenerates to "everything arrives at time zero",
/// but the draw still goes through the RNG so downstream samples stay
/// aligned across window sizes. (The former inline special case skipped
/// the draw when the window was zero, shifting every later sample of the
/// same request relative to a non-zero window.)
pub(crate) fn sample_window_arrival<R: Rng + ?Sized>(window_cycles: u64, rng: &mut R) -> Cycles {
    Cycles::new(rng.gen_range(0..window_cycles.max(1)))
}

/// Samples the per-request fields shared by the finite-window generator and
/// the open-loop arrival processes ([`crate::arrivals`]): model and batch
/// from their pools, then priority, then arrival, then (for RNNs) the actual
/// sequence lengths. Priority and arrival come from the caller via closures
/// so each path keeps its own distribution while the RNG draw order stays
/// identical — the finite-window stream is bit-compatible with the
/// pre-refactor generator.
pub(crate) fn sample_request<R: Rng + ?Sized>(
    id: TaskId,
    models: &[ModelKind],
    batch_sizes: &[u64],
    rng: &mut R,
    pick_priority: impl FnOnce(&mut R) -> Priority,
    pick_arrival: impl FnOnce(&mut R) -> Cycles,
) -> TaskRequest {
    let model = *models.choose(rng).expect("model pool is non-empty");
    let batch = *batch_sizes.choose(rng).expect("batch pool is non-empty");
    let priority = pick_priority(rng);
    let arrival = pick_arrival(rng);
    let seq = if model.is_rnn() {
        let input_len = sample_input_len(model, rng);
        SeqSpec::new(input_len, sample_output_len(model, input_len, rng))
    } else {
        SeqSpec::none()
    };
    TaskRequest::new(id, model)
        .with_batch(batch)
        .with_priority(priority)
        .with_arrival(arrival)
        .with_seq(seq)
}

/// Generates one multi-tasked workload.
///
/// The dispatch window is interpreted against the Table I NPU frequency
/// (700 MHz) so that workloads are reproducible independent of the simulated
/// NPU configuration.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn generate_workload<R: Rng + ?Sized>(config: &WorkloadConfig, rng: &mut R) -> WorkloadSpec {
    if let Err(msg) = config.validate() {
        panic!("invalid WorkloadConfig: {msg}");
    }
    let npu = NpuConfig::paper_default();
    let window_cycles = npu.millis_to_cycles(config.dispatch_window_ms).get();
    let mut requests = Vec::with_capacity(config.task_count);
    for id in 0..config.task_count {
        requests.push(sample_request(
            TaskId(id as u64),
            &config.models,
            &config.batch_sizes,
            rng,
            |rng| {
                *config
                    .priorities
                    .choose(rng)
                    .expect("priority pool is non-empty")
            },
            |rng| sample_window_arrival(window_cycles, rng),
        ));
    }
    requests.sort_by_key(|r| r.id);
    WorkloadSpec { requests }
}

/// Generates the `runs` independent workloads the paper averages over
/// (25 simulation runs per policy, Section VI).
pub fn generate_workload_suite<R: Rng + ?Sized>(
    config: &WorkloadConfig,
    runs: usize,
    rng: &mut R,
) -> Vec<WorkloadSpec> {
    (0..runs).map(|_| generate_workload(config, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_default_generates_eight_tasks() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = generate_workload(&WorkloadConfig::paper_default(), &mut rng);
        assert_eq!(spec.len(), 8);
        assert!(!spec.is_empty());
        // IDs are unique and dense.
        let ids: Vec<u64> = spec.requests.iter().map(|r| r.id.0).collect();
        assert_eq!(ids, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn arrivals_fall_inside_the_dispatch_window() {
        let mut rng = StdRng::seed_from_u64(2);
        let config = WorkloadConfig::paper_default();
        let window = NpuConfig::paper_default().millis_to_cycles(config.dispatch_window_ms);
        for _ in 0..10 {
            let spec = generate_workload(&config, &mut rng);
            assert!(spec.requests.iter().all(|r| r.arrival < window));
        }
    }

    #[test]
    fn rnn_requests_carry_sequence_lengths() {
        let mut rng = StdRng::seed_from_u64(3);
        let spec = generate_workload(
            &WorkloadConfig {
                task_count: 20,
                ..WorkloadConfig::paper_default()
            },
            &mut rng,
        );
        for request in &spec.requests {
            if request.model.is_rnn() {
                assert!(request.seq.input_len > 0);
                assert!(request.seq.output_len > 0);
            } else {
                assert_eq!(request.seq, SeqSpec::none());
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate_workload(
            &WorkloadConfig::paper_default(),
            &mut StdRng::seed_from_u64(7),
        );
        let b = generate_workload(
            &WorkloadConfig::paper_default(),
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(a, b);
        let c = generate_workload(
            &WorkloadConfig::paper_default(),
            &mut StdRng::seed_from_u64(8),
        );
        assert_ne!(a, c);
    }

    #[test]
    fn zero_window_arrivals_are_zero_without_desyncing_the_stream() {
        // A zero-length dispatch window degenerates to "everything arrives at
        // time zero" but still consumes one RNG draw per request through the
        // shared arrival helper, so the rest of each request (sequence
        // lengths in particular) matches what any non-zero window samples.
        let zero = WorkloadConfig {
            dispatch_window_ms: 0.0,
            ..WorkloadConfig::paper_default()
        };
        let spec = generate_workload(&zero, &mut StdRng::seed_from_u64(11));
        assert!(spec.requests.iter().all(|r| r.arrival == Cycles::ZERO));

        let windowed = generate_workload(
            &WorkloadConfig::paper_default(),
            &mut StdRng::seed_from_u64(11),
        );
        for (z, w) in spec.requests.iter().zip(&windowed.requests) {
            assert_eq!(z.model, w.model);
            assert_eq!(z.batch, w.batch);
            assert_eq!(z.priority, w.priority);
            assert_eq!(z.seq, w.seq);
        }
    }

    #[test]
    fn priorities_and_batches_come_from_the_pools() {
        let mut rng = StdRng::seed_from_u64(4);
        let config = WorkloadConfig {
            task_count: 50,
            batch_sizes: vec![4, 16],
            priorities: vec![Priority::High],
            ..WorkloadConfig::paper_default()
        };
        let spec = generate_workload(&config, &mut rng);
        assert!(spec.requests.iter().all(|r| r.priority == Priority::High));
        assert!(spec.requests.iter().all(|r| r.batch == 4 || r.batch == 16));
        assert_eq!(spec.with_priority(Priority::High).len(), 50);
        assert!(spec.with_priority(Priority::Low).is_empty());
    }

    #[test]
    fn suite_produces_independent_runs() {
        let mut rng = StdRng::seed_from_u64(5);
        let suite = generate_workload_suite(&WorkloadConfig::paper_default(), 25, &mut rng);
        assert_eq!(suite.len(), 25);
        assert_ne!(suite[0], suite[1]);
    }

    #[test]
    fn mixed_batch_preset_includes_sixteen() {
        assert!(WorkloadConfig::mixed_batch().batch_sizes.contains(&16));
        assert!(WorkloadConfig::mixed_batch().validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid WorkloadConfig")]
    fn invalid_config_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let config = WorkloadConfig {
            task_count: 0,
            ..WorkloadConfig::paper_default()
        };
        let _ = generate_workload(&config, &mut rng);
    }

    #[test]
    fn validation_errors_cover_each_field() {
        let base = WorkloadConfig::paper_default();
        let cases = [
            WorkloadConfig {
                models: vec![],
                ..base.clone()
            },
            WorkloadConfig {
                batch_sizes: vec![],
                ..base.clone()
            },
            WorkloadConfig {
                batch_sizes: vec![0],
                ..base.clone()
            },
            WorkloadConfig {
                priorities: vec![],
                ..base.clone()
            },
            WorkloadConfig {
                dispatch_window_ms: -1.0,
                ..base.clone()
            },
        ];
        for case in cases {
            assert!(case.validate().is_err());
        }
        assert!(base.validate().is_ok());
    }
}
