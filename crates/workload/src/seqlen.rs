//! Synthetic sequence-length characterization (the Figure 9 substitution).
//!
//! The paper profiles Google Translate over WMT-2016 and the Google Speech
//! Recognition API over LibriSpeech to characterize how the time-unrolled
//! output sequence length relates to the (statically known) input sequence
//! length. Those services and datasets are not available here, so this module
//! substitutes a generative model with the same qualitative shape: the output
//! length is the model's mean relation (`ModelKind::expected_output_len`)
//! perturbed by bounded multiplicative noise, with language-dependent slope
//! (German slightly longer than English, Korean shorter, ASR text much
//! shorter than its audio-frame input). The 25–75 % interquartile range of
//! the resulting distributions stays within a narrow band around the mean,
//! matching the paper's observation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dnn_models::ModelKind;
use prema_predictor::SeqLenTable;

/// Relative noise applied to the mean output length (one-sigma, as a fraction
/// of the mean).
const RELATIVE_NOISE: f64 = 0.15;

/// A synthetic profile of one seq2seq application: the samples that would
/// have been collected by running the application over its test set.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeqLenCharacterization {
    model: ModelKind,
    samples: Vec<(u64, u64)>,
}

impl SeqLenCharacterization {
    /// Profiles `model` with `samples_per_length` inference tests per input
    /// length across the model's input-length range (Figure 9 uses 1500
    /// samples per application).
    ///
    /// # Panics
    ///
    /// Panics if `model` is not an RNN or `samples_per_length` is zero.
    pub fn profile<R: Rng + ?Sized>(
        model: ModelKind,
        samples_per_length: usize,
        rng: &mut R,
    ) -> Self {
        assert!(
            model.is_rnn(),
            "only RNN models have sequence characterizations"
        );
        assert!(
            samples_per_length > 0,
            "at least one sample per length is required"
        );
        let (lo, hi) = model.input_len_range();
        let mut samples = Vec::new();
        for input_len in lo..=hi {
            for _ in 0..samples_per_length {
                samples.push((input_len, sample_output_len(model, input_len, rng)));
            }
        }
        SeqLenCharacterization { model, samples }
    }

    /// The profiled model.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// The raw `(input_len, output_len)` samples.
    pub fn samples(&self) -> &[(u64, u64)] {
        &self.samples
    }

    /// Builds the software lookup-table regression model of Section V-B from
    /// the profiled samples.
    pub fn to_table(&self) -> SeqLenTable {
        SeqLenTable::from_samples(self.samples.iter().copied())
    }
}

/// Draws the *actual* output sequence length a request with `input_len` will
/// unroll to, using the same generative process as the profiling pass (so the
/// profiled table is an unbiased regression of the actual behaviour).
pub fn sample_output_len<R: Rng + ?Sized>(model: ModelKind, input_len: u64, rng: &mut R) -> u64 {
    if !model.is_rnn() {
        return 0;
    }
    let mean = model.expected_output_len(input_len) as f64;
    if !model.has_dynamic_output_len() {
        // Linear applications (sentiment analysis): output length is exactly
        // determined by the input length.
        return mean.round() as u64;
    }
    // Irwin–Hall approximation of a normal around the mean.
    let unit: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
    let noisy = mean * (1.0 + RELATIVE_NOISE * unit);
    (noisy.round() as i64).max(1) as u64
}

/// Draws a uniformly random input sequence length from the model's profiled
/// input range (Section VI: "the input sequence length is randomly chosen
/// among the profiled/tested set of input sentence lengths").
pub fn sample_input_len<R: Rng + ?Sized>(model: ModelKind, rng: &mut R) -> u64 {
    let (lo, hi) = model.input_len_range();
    if hi == 0 {
        return 0;
    }
    rng.gen_range(lo..=hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnn_models::RNN_MODELS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn characterization_covers_the_input_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = SeqLenCharacterization::profile(ModelKind::RnnTranslation1, 10, &mut rng);
        let (lo, hi) = ModelKind::RnnTranslation1.input_len_range();
        assert_eq!(c.samples().len(), ((hi - lo + 1) * 10) as usize);
        assert_eq!(c.model(), ModelKind::RnnTranslation1);
        let inputs: Vec<u64> = c.samples().iter().map(|s| s.0).collect();
        assert!(inputs.contains(&lo) && inputs.contains(&hi));
    }

    #[test]
    fn regression_table_tracks_the_mean_relation() {
        let mut rng = StdRng::seed_from_u64(11);
        for model in [
            ModelKind::RnnTranslation1,
            ModelKind::RnnTranslation2,
            ModelKind::RnnSpeech,
        ] {
            let table = SeqLenCharacterization::profile(model, 50, &mut rng).to_table();
            let (lo, hi) = model.input_len_range();
            for input_len in [lo, (lo + hi) / 2, hi] {
                let predicted = table.predict(input_len) as f64;
                let mean = model.expected_output_len(input_len) as f64;
                assert!(
                    (predicted - mean).abs() <= (0.15 * mean).max(2.0),
                    "{model}: predicted {predicted} vs mean {mean} at input {input_len}"
                );
            }
        }
    }

    #[test]
    fn linear_models_have_deterministic_output_lengths() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            assert_eq!(sample_output_len(ModelKind::RnnSentiment, 23, &mut rng), 23);
        }
    }

    #[test]
    fn nonlinear_models_vary_but_stay_near_the_mean() {
        let mut rng = StdRng::seed_from_u64(9);
        let mean = ModelKind::RnnTranslation1.expected_output_len(30) as f64;
        let draws: Vec<u64> = (0..200)
            .map(|_| sample_output_len(ModelKind::RnnTranslation1, 30, &mut rng))
            .collect();
        let distinct: std::collections::BTreeSet<u64> = draws.iter().copied().collect();
        assert!(distinct.len() > 3, "output lengths should vary");
        let avg = draws.iter().sum::<u64>() as f64 / draws.len() as f64;
        assert!((avg - mean).abs() < 0.1 * mean, "avg {avg} vs mean {mean}");
        assert!(draws.iter().all(|&d| d >= 1));
    }

    #[test]
    fn asr_outputs_are_shorter_than_inputs_and_mt_german_longer() {
        let mut rng = StdRng::seed_from_u64(13);
        let asr: f64 = (0..100)
            .map(|_| sample_output_len(ModelKind::RnnSpeech, 80, &mut rng) as f64)
            .sum::<f64>()
            / 100.0;
        assert!(asr < 80.0 * 0.7);
        let de: f64 = (0..100)
            .map(|_| sample_output_len(ModelKind::RnnTranslation1, 30, &mut rng) as f64)
            .sum::<f64>()
            / 100.0;
        assert!(de > 30.0);
        let ko: f64 = (0..100)
            .map(|_| sample_output_len(ModelKind::RnnTranslation2, 30, &mut rng) as f64)
            .sum::<f64>()
            / 100.0;
        assert!(ko < 30.0);
    }

    #[test]
    fn input_length_sampling_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(17);
        for model in RNN_MODELS {
            let (lo, hi) = model.input_len_range();
            for _ in 0..50 {
                let len = sample_input_len(model, &mut rng);
                assert!(len >= lo && len <= hi);
            }
        }
        assert_eq!(sample_input_len(ModelKind::CnnAlexNet, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "only RNN models")]
    fn cnn_characterization_rejected() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = SeqLenCharacterization::profile(ModelKind::CnnVggNet, 5, &mut rng);
    }
}
