//! DNN layer intermediate representation, network graphs, and the model zoo
//! used by the PREMA reproduction (Section III of the paper).
//!
//! The crate provides:
//!
//! * [`Layer`] / [`LayerKind`] — a compact layer IR covering the layer types
//!   the paper enumerates (CONV, depthwise CONV, FC, ACTV, POOL, RECR) with
//!   shape arithmetic, MAC counts, and GEMM lowering dimensions.
//! * [`NetworkGraph`] — the direct acyclic graph of layers extracted at
//!   compile time (Section II-A), with topological iteration.
//! * [`ModelKind`] and the [`models`] module — builders for the eight
//!   evaluation DNNs (CNN-AN/GN/VN/MN and RNN-SA/MT1/MT2/ASR) plus ResNet-50
//!   used by the Figure 1 co-location experiment.
//! * [`lowering`] — the mapping of a layer onto the systolic-array NPU's
//!   [`npu_sim::LayerWork`] description.
//! * [`sparsity`] — the per-layer activation-density model used to reproduce
//!   Figure 7.
//!
//! # Example
//!
//! ```
//! use dnn_models::{ModelKind, SeqSpec};
//!
//! let net = ModelKind::CnnAlexNet.build(4, SeqSpec::none());
//! assert!(net.layer_count() > 10);
//! assert!(net.total_macs() > 1_000_000_000); // batch-4 AlexNet is ~ billions of MACs
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod graph;
pub mod layer;
pub mod lowering;
pub mod models;
pub mod sparsity;

pub use graph::{NetworkGraph, NodeId};
pub use layer::{ActivationKind, Layer, LayerKind, PoolKind, RecurrentKind};
pub use models::{ModelKind, SeqSpec, ALL_EVAL_MODELS, CNN_MODELS, RNN_MODELS};
pub use sparsity::ActivationDensityModel;
