//! Layer intermediate representation.
//!
//! A [`Layer`] describes one node of a DNN's dataflow graph: its type
//! ([`LayerKind`]), its shape parameters, and an optionally fused activation
//! function. The IR is deliberately architecture-agnostic: it exposes MAC
//! counts, element counts, and the `(m, k, n)` GEMM dimensions the layer
//! lowers to, and leaves the mapping onto a concrete NPU to
//! [`crate::lowering`].

use serde::{Deserialize, Serialize};

/// Bytes per 16-bit datum, matching the NPU's native precision.
pub const BYTES_PER_ELEMENT: u64 = 2;

/// Element-wise activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Softmax over the class/vocabulary dimension.
    Softmax,
}

/// Pooling reduction kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Recurrent cell kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RecurrentKind {
    /// Long short-term memory cell (4 gates).
    Lstm,
    /// Gated recurrent unit (3 gates).
    Gru,
}

impl RecurrentKind {
    /// Number of gate matrices the cell computes per time step.
    pub fn gate_count(self) -> u64 {
        match self {
            RecurrentKind::Lstm => 4,
            RecurrentKind::Gru => 3,
        }
    }
}

/// The GEMM dimensions a layer lowers to: an `(m × k)` weight matrix applied
/// to a `(k × n)` input-activation matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmDims {
    /// Output features / weight rows.
    pub m: u64,
    /// Reduction dimension.
    pub k: u64,
    /// Activation columns (batch × spatial positions or batch × time).
    pub n: u64,
}

impl GemmDims {
    /// Total MAC operations of the GEMM.
    pub fn macs(&self) -> u64 {
        self.m * self.k * self.n
    }
}

/// The type and shape parameters of one DNN layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// Standard convolution.
    Conv {
        /// Input channels.
        in_channels: u64,
        /// Output channels (number of filters).
        out_channels: u64,
        /// Kernel size (height, width).
        kernel: (u64, u64),
        /// Stride (height, width).
        stride: (u64, u64),
        /// Zero padding (height, width).
        padding: (u64, u64),
        /// Input spatial size (height, width).
        input_hw: (u64, u64),
    },
    /// Depthwise convolution (one filter per channel, no cross-channel
    /// reduction). Used by MobileNet's separable convolutions.
    DepthwiseConv {
        /// Number of channels (input == output).
        channels: u64,
        /// Kernel size (height, width).
        kernel: (u64, u64),
        /// Stride (height, width).
        stride: (u64, u64),
        /// Zero padding (height, width).
        padding: (u64, u64),
        /// Input spatial size (height, width).
        input_hw: (u64, u64),
    },
    /// Fully-connected (dense) layer.
    FullyConnected {
        /// Input features.
        in_features: u64,
        /// Output features.
        out_features: u64,
    },
    /// Stand-alone element-wise activation layer (in-place).
    Activation {
        /// Activation function.
        kind: ActivationKind,
        /// Elements processed per sample.
        elements_per_sample: u64,
    },
    /// Pooling layer (in-place reduction).
    Pool {
        /// Pooling kind.
        kind: PoolKind,
        /// Window size (height, width).
        window: (u64, u64),
        /// Stride (height, width).
        stride: (u64, u64),
        /// Number of channels.
        channels: u64,
        /// Input spatial size (height, width).
        input_hw: (u64, u64),
    },
    /// One time step of a recurrent layer (the model builders time-unroll
    /// recurrent layers into one `Recurrent` node per step, Figure 8(a)).
    Recurrent {
        /// Cell type.
        kind: RecurrentKind,
        /// Input feature size.
        input_size: u64,
        /// Hidden state size.
        hidden_size: u64,
    },
}

fn conv_out_dim(input: u64, kernel: u64, stride: u64, padding: u64) -> u64 {
    debug_assert!(stride > 0, "stride must be non-zero");
    (input + 2 * padding).saturating_sub(kernel) / stride + 1
}

/// A named layer with an optionally fused activation function.
///
/// ```
/// use dnn_models::layer::{Layer, LayerKind, ActivationKind};
///
/// let conv = Layer::new(
///     "conv1",
///     LayerKind::Conv {
///         in_channels: 3,
///         out_channels: 64,
///         kernel: (7, 7),
///         stride: (2, 2),
///         padding: (3, 3),
///         input_hw: (224, 224),
///     },
/// )
/// .fused(ActivationKind::Relu);
/// assert_eq!(conv.output_hw(), Some((112, 112)));
/// assert!(conv.macs(1) > 100_000_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    name: String,
    kind: LayerKind,
    fused_activation: Option<ActivationKind>,
}

impl Layer {
    /// Creates a new layer.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Layer {
            name: name.into(),
            kind,
            fused_activation: None,
        }
    }

    /// Fuses an activation function with this layer (executed by the vector
    /// unit as part of the same `VECTOR_OP`, Section IV-B).
    pub fn fused(mut self, activation: ActivationKind) -> Self {
        self.fused_activation = Some(activation);
        self
    }

    /// The layer's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layer's kind and shape parameters.
    pub fn kind(&self) -> &LayerKind {
        &self.kind
    }

    /// The fused activation, if any.
    pub fn fused_activation(&self) -> Option<ActivationKind> {
        self.fused_activation
    }

    /// Output spatial size for convolution / pooling layers.
    pub fn output_hw(&self) -> Option<(u64, u64)> {
        match self.kind {
            LayerKind::Conv {
                kernel,
                stride,
                padding,
                input_hw,
                ..
            }
            | LayerKind::DepthwiseConv {
                kernel,
                stride,
                padding,
                input_hw,
                ..
            } => Some((
                conv_out_dim(input_hw.0, kernel.0, stride.0, padding.0),
                conv_out_dim(input_hw.1, kernel.1, stride.1, padding.1),
            )),
            LayerKind::Pool {
                window,
                stride,
                input_hw,
                ..
            } => Some((
                conv_out_dim(input_hw.0, window.0, stride.0, 0),
                conv_out_dim(input_hw.1, window.1, stride.1, 0),
            )),
            _ => None,
        }
    }

    /// Number of output elements produced for a batch of `batch` samples.
    pub fn output_elements(&self, batch: u64) -> u64 {
        match self.kind {
            LayerKind::Conv { out_channels, .. } => {
                let (h, w) = self.output_hw().expect("conv has spatial output");
                batch * out_channels * h * w
            }
            LayerKind::DepthwiseConv { channels, .. } => {
                let (h, w) = self.output_hw().expect("depthwise conv has spatial output");
                batch * channels * h * w
            }
            LayerKind::FullyConnected { out_features, .. } => batch * out_features,
            LayerKind::Activation {
                elements_per_sample,
                ..
            } => batch * elements_per_sample,
            LayerKind::Pool { channels, .. } => {
                let (h, w) = self.output_hw().expect("pool has spatial output");
                batch * channels * h * w
            }
            LayerKind::Recurrent { hidden_size, .. } => batch * hidden_size,
        }
    }

    /// Number of input elements consumed for a batch of `batch` samples.
    pub fn input_elements(&self, batch: u64) -> u64 {
        match self.kind {
            LayerKind::Conv {
                in_channels,
                input_hw,
                ..
            } => batch * in_channels * input_hw.0 * input_hw.1,
            LayerKind::DepthwiseConv {
                channels, input_hw, ..
            } => batch * channels * input_hw.0 * input_hw.1,
            LayerKind::FullyConnected { in_features, .. } => batch * in_features,
            LayerKind::Activation {
                elements_per_sample,
                ..
            } => batch * elements_per_sample,
            LayerKind::Pool {
                channels, input_hw, ..
            } => batch * channels * input_hw.0 * input_hw.1,
            LayerKind::Recurrent {
                input_size,
                hidden_size,
                ..
            } => batch * (input_size + hidden_size),
        }
    }

    /// Number of trainable weight parameters of the layer.
    pub fn weight_count(&self) -> u64 {
        match self.kind {
            LayerKind::Conv {
                in_channels,
                out_channels,
                kernel,
                ..
            } => out_channels * in_channels * kernel.0 * kernel.1,
            LayerKind::DepthwiseConv {
                channels, kernel, ..
            } => channels * kernel.0 * kernel.1,
            LayerKind::FullyConnected {
                in_features,
                out_features,
            } => in_features * out_features,
            LayerKind::Activation { .. } | LayerKind::Pool { .. } => 0,
            LayerKind::Recurrent {
                kind,
                input_size,
                hidden_size,
            } => kind.gate_count() * hidden_size * (input_size + hidden_size),
        }
    }

    /// Output bytes for a batch of `batch` samples at 16-bit precision.
    pub fn output_bytes(&self, batch: u64) -> u64 {
        self.output_elements(batch) * BYTES_PER_ELEMENT
    }

    /// Input bytes for a batch of `batch` samples at 16-bit precision.
    pub fn input_bytes(&self, batch: u64) -> u64 {
        self.input_elements(batch) * BYTES_PER_ELEMENT
    }

    /// Weight bytes at 16-bit precision.
    pub fn weight_bytes(&self) -> u64 {
        self.weight_count() * BYTES_PER_ELEMENT
    }

    /// The `(m, k, n)` GEMM this layer lowers to on a weight-stationary
    /// accelerator, or `None` for layers executed on the vector unit only.
    ///
    /// * CONV: `m = out_channels`, `k = in_channels · kh · kw`,
    ///   `n = batch · out_h · out_w` (im2col lowering, Section II-B).
    /// * Depthwise CONV: `m = channels`, `k = kh · kw`,
    ///   `n = batch · out_h · out_w` (each channel reduces only over its own
    ///   window, which badly underutilizes the array — the red-circled points
    ///   of Figure 10).
    /// * FC: `m = out_features`, `k = in_features`, `n = batch`.
    /// * RECR: `m = gates · hidden`, `k = input + hidden`, `n = batch`.
    pub fn gemm_dims(&self, batch: u64) -> Option<GemmDims> {
        assert!(batch > 0, "batch size must be non-zero");
        match self.kind {
            LayerKind::Conv {
                in_channels,
                out_channels,
                kernel,
                ..
            } => {
                let (h, w) = self.output_hw().expect("conv has spatial output");
                Some(GemmDims {
                    m: out_channels,
                    k: in_channels * kernel.0 * kernel.1,
                    n: batch * h * w,
                })
            }
            LayerKind::DepthwiseConv {
                channels, kernel, ..
            } => {
                let (h, w) = self.output_hw().expect("depthwise conv has spatial output");
                Some(GemmDims {
                    m: channels,
                    k: kernel.0 * kernel.1,
                    n: batch * h * w,
                })
            }
            LayerKind::FullyConnected {
                in_features,
                out_features,
            } => Some(GemmDims {
                m: out_features,
                k: in_features,
                n: batch,
            }),
            LayerKind::Activation { .. } | LayerKind::Pool { .. } => None,
            LayerKind::Recurrent {
                kind,
                input_size,
                hidden_size,
            } => Some(GemmDims {
                m: kind.gate_count() * hidden_size,
                k: input_size + hidden_size,
                n: batch,
            }),
        }
    }

    /// Total MAC operations for a batch of `batch` samples.
    pub fn macs(&self, batch: u64) -> u64 {
        self.gemm_dims(batch).map(|g| g.macs()).unwrap_or(0)
    }

    /// Whether the layer operates in place (ACTV / POOL layers reuse the
    /// input storage, Section IV-B), producing no new checkpointable state.
    pub fn is_in_place(&self) -> bool {
        matches!(
            self.kind,
            LayerKind::Activation { .. } | LayerKind::Pool { .. }
        )
    }

    /// Whether the layer carries layer-specific weights (CONV/FC/RECR).
    pub fn has_weights(&self) -> bool {
        self.weight_count() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv1() -> Layer {
        Layer::new(
            "conv1",
            LayerKind::Conv {
                in_channels: 3,
                out_channels: 96,
                kernel: (11, 11),
                stride: (4, 4),
                padding: (0, 0),
                input_hw: (227, 227),
            },
        )
    }

    #[test]
    fn conv_output_dims_match_formula() {
        assert_eq!(conv1().output_hw(), Some((55, 55)));
        let padded = Layer::new(
            "c",
            LayerKind::Conv {
                in_channels: 64,
                out_channels: 64,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                input_hw: (56, 56),
            },
        );
        assert_eq!(padded.output_hw(), Some((56, 56)));
    }

    #[test]
    fn alexnet_conv1_macs_match_reference() {
        // Reference: 96 * 3*11*11 * 55*55 ≈ 105 M MACs per image.
        assert_eq!(conv1().macs(1), 96 * 3 * 11 * 11 * 55 * 55);
        assert_eq!(conv1().macs(4), 4 * conv1().macs(1));
    }

    #[test]
    fn conv_gemm_dims_follow_im2col() {
        let g = conv1().gemm_dims(2).unwrap();
        assert_eq!(g.m, 96);
        assert_eq!(g.k, 3 * 11 * 11);
        assert_eq!(g.n, 2 * 55 * 55);
        assert_eq!(g.macs(), conv1().macs(2));
    }

    #[test]
    fn depthwise_conv_has_small_reduction() {
        let dw = Layer::new(
            "dw",
            LayerKind::DepthwiseConv {
                channels: 256,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                input_hw: (28, 28),
            },
        );
        let g = dw.gemm_dims(1).unwrap();
        assert_eq!(g.m, 256);
        assert_eq!(g.k, 9);
        assert_eq!(g.n, 28 * 28);
        assert_eq!(dw.macs(1), 256 * 9 * 28 * 28);
        assert_eq!(dw.weight_count(), 256 * 9);
    }

    #[test]
    fn fully_connected_dims() {
        let fc = Layer::new(
            "fc6",
            LayerKind::FullyConnected {
                in_features: 9216,
                out_features: 4096,
            },
        );
        let g = fc.gemm_dims(16).unwrap();
        assert_eq!((g.m, g.k, g.n), (4096, 9216, 16));
        assert_eq!(fc.weight_count(), 9216 * 4096);
        assert_eq!(fc.output_elements(16), 4096 * 16);
    }

    #[test]
    fn lstm_step_dims() {
        let lstm = Layer::new(
            "lstm",
            LayerKind::Recurrent {
                kind: RecurrentKind::Lstm,
                input_size: 1024,
                hidden_size: 1024,
            },
        );
        let g = lstm.gemm_dims(1).unwrap();
        assert_eq!((g.m, g.k, g.n), (4 * 1024, 2048, 1));
        assert_eq!(lstm.weight_count(), 4 * 1024 * 2048);
        let gru = Layer::new(
            "gru",
            LayerKind::Recurrent {
                kind: RecurrentKind::Gru,
                input_size: 512,
                hidden_size: 512,
            },
        );
        assert_eq!(gru.gemm_dims(1).unwrap().m, 3 * 512);
    }

    #[test]
    fn pool_and_activation_are_in_place_and_weightless() {
        let pool = Layer::new(
            "pool1",
            LayerKind::Pool {
                kind: PoolKind::Max,
                window: (3, 3),
                stride: (2, 2),
                channels: 96,
                input_hw: (55, 55),
            },
        );
        assert!(pool.is_in_place());
        assert!(!pool.has_weights());
        assert_eq!(pool.gemm_dims(1), None);
        assert_eq!(pool.output_hw(), Some((27, 27)));
        assert_eq!(pool.macs(8), 0);

        let act = Layer::new(
            "relu",
            LayerKind::Activation {
                kind: ActivationKind::Relu,
                elements_per_sample: 1000,
            },
        );
        assert!(act.is_in_place());
        assert_eq!(act.output_elements(4), 4000);
    }

    #[test]
    fn byte_accounting_uses_two_byte_elements() {
        let fc = Layer::new(
            "fc",
            LayerKind::FullyConnected {
                in_features: 10,
                out_features: 20,
            },
        );
        assert_eq!(fc.output_bytes(3), 20 * 3 * 2);
        assert_eq!(fc.input_bytes(3), 10 * 3 * 2);
        assert_eq!(fc.weight_bytes(), 200 * 2);
    }

    #[test]
    fn fused_activation_is_recorded() {
        let layer = conv1().fused(ActivationKind::Relu);
        assert_eq!(layer.fused_activation(), Some(ActivationKind::Relu));
        assert_eq!(conv1().fused_activation(), None);
    }

    #[test]
    #[should_panic(expected = "batch size must be non-zero")]
    fn zero_batch_rejected() {
        let _ = conv1().gemm_dims(0);
    }

    #[test]
    fn recurrent_input_elements_include_hidden_state() {
        let lstm = Layer::new(
            "lstm",
            LayerKind::Recurrent {
                kind: RecurrentKind::Lstm,
                input_size: 100,
                hidden_size: 200,
            },
        );
        assert_eq!(lstm.input_elements(2), 2 * 300);
        assert_eq!(lstm.output_elements(2), 2 * 200);
    }
}
