//! Network dataflow graphs.
//!
//! A DNN is represented as a directed acyclic graph whose nodes are
//! [`Layer`]s (Section II-A of the PREMA paper: "inter-layer data
//! dependencies are extracted at compile-time ... encapsulated as a direct
//! acyclic graph"). Inference executes the nodes in a topological order; on a
//! temporally multi-tasked NPU the layers of one task run sequentially, so
//! the graph's main roles are (1) documenting dependencies, (2) providing a
//! deterministic execution order, and (3) aggregating MAC/parameter/byte
//! statistics.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::layer::Layer;

/// Identifier of a node within a [`NetworkGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(usize);

impl NodeId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Errors produced while constructing or validating a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node that does not exist.
    UnknownNode(usize),
    /// The graph contains a cycle and therefore is not a DAG.
    CycleDetected,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(idx) => write!(f, "unknown node index {idx}"),
            GraphError::CycleDetected => write!(f, "graph contains a cycle"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A DNN expressed as a DAG of layers.
///
/// ```
/// use dnn_models::{NetworkGraph};
/// use dnn_models::layer::{Layer, LayerKind};
///
/// let mut g = NetworkGraph::new("tiny");
/// let a = g.add_layer(Layer::new("fc1", LayerKind::FullyConnected { in_features: 8, out_features: 16 }));
/// let b = g.add_layer(Layer::new("fc2", LayerKind::FullyConnected { in_features: 16, out_features: 4 }));
/// g.add_edge(a, b).unwrap();
/// assert_eq!(g.layer_count(), 2);
/// assert_eq!(g.topological_order().unwrap().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkGraph {
    name: String,
    layers: Vec<Layer>,
    edges: Vec<(usize, usize)>,
}

impl NetworkGraph {
    /// Creates an empty graph with the given model name.
    pub fn new(name: impl Into<String>) -> Self {
        NetworkGraph {
            name: name.into(),
            layers: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a layer node and returns its identifier.
    pub fn add_layer(&mut self, layer: Layer) -> NodeId {
        self.layers.push(layer);
        NodeId(self.layers.len() - 1)
    }

    /// Adds a layer and an edge from `from` to it, returning the new node.
    /// This is the common case of appending to a linear chain or branch.
    pub fn add_layer_after(&mut self, from: NodeId, layer: Layer) -> NodeId {
        let id = self.add_layer(layer);
        self.edges.push((from.0, id.0));
        id
    }

    /// Adds a dependency edge from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if either endpoint does not exist.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> Result<(), GraphError> {
        if from.0 >= self.layers.len() {
            return Err(GraphError::UnknownNode(from.0));
        }
        if to.0 >= self.layers.len() {
            return Err(GraphError::UnknownNode(to.0));
        }
        self.edges.push((from.0, to.0));
        Ok(())
    }

    /// Number of layers (graph nodes).
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Number of dependency edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layer stored at `id`, if it exists.
    pub fn layer(&self, id: NodeId) -> Option<&Layer> {
        self.layers.get(id.0)
    }

    /// Iterates over the layers in insertion order.
    pub fn layers(&self) -> impl Iterator<Item = (NodeId, &Layer)> {
        self.layers.iter().enumerate().map(|(i, l)| (NodeId(i), l))
    }

    /// Successors of `id`.
    pub fn successors(&self, id: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|(from, _)| *from == id.0)
            .map(|(_, to)| NodeId(*to))
            .collect()
    }

    /// Predecessors of `id`.
    pub fn predecessors(&self, id: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|(_, to)| *to == id.0)
            .map(|(from, _)| NodeId(*from))
            .collect()
    }

    /// Returns the nodes in a topological order (Kahn's algorithm). Nodes
    /// with no declared dependencies keep their insertion order, which is the
    /// execution order the model builders intend.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::CycleDetected`] if the edges contain a cycle.
    pub fn topological_order(&self) -> Result<Vec<NodeId>, GraphError> {
        let n = self.layers.len();
        let mut in_degree = vec![0usize; n];
        for &(_, to) in &self.edges {
            in_degree[to] += 1;
        }
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| in_degree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        // Process in index order to keep the builders' insertion order stable.
        let mut ready: Vec<usize> = queue.drain(..).collect();
        ready.sort_unstable();
        let mut ready: VecDeque<usize> = ready.into();
        while let Some(node) = ready.pop_front() {
            order.push(NodeId(node));
            let mut newly_ready = Vec::new();
            for &(from, to) in &self.edges {
                if from == node {
                    in_degree[to] -= 1;
                    if in_degree[to] == 0 {
                        newly_ready.push(to);
                    }
                }
            }
            newly_ready.sort_unstable();
            for node in newly_ready {
                ready.push_back(node);
            }
        }
        if order.len() != n {
            Err(GraphError::CycleDetected)
        } else {
            Ok(order)
        }
    }

    /// Layers in topological (execution) order.
    ///
    /// # Panics
    ///
    /// Panics if the graph contains a cycle; the model-zoo builders never
    /// produce cyclic graphs.
    pub fn execution_order(&self) -> Vec<&Layer> {
        self.topological_order()
            .expect("model graphs are acyclic")
            .into_iter()
            .map(|id| &self.layers[id.0])
            .collect()
    }

    /// Total MAC operations across all layers for a batch of `batch`.
    pub fn total_macs_for_batch(&self, batch: u64) -> u64 {
        self.layers.iter().map(|l| l.macs(batch)).sum()
    }

    /// Total MAC operations across all layers for batch 1.
    pub fn total_macs(&self) -> u64 {
        self.total_macs_for_batch(1)
    }

    /// Total number of weight parameters across all layers.
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_count()).sum()
    }

    /// Total weight bytes at 16-bit precision.
    pub fn total_weight_bytes(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, LayerKind};

    fn fc(name: &str, inf: u64, outf: u64) -> Layer {
        Layer::new(
            name,
            LayerKind::FullyConnected {
                in_features: inf,
                out_features: outf,
            },
        )
    }

    fn linear_graph() -> NetworkGraph {
        let mut g = NetworkGraph::new("linear");
        let a = g.add_layer(fc("a", 4, 8));
        let b = g.add_layer_after(a, fc("b", 8, 16));
        let _c = g.add_layer_after(b, fc("c", 16, 2));
        g
    }

    #[test]
    fn counts_and_accessors() {
        let g = linear_graph();
        assert_eq!(g.layer_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.is_empty());
        assert_eq!(g.name(), "linear");
        assert_eq!(g.layer(NodeId(1)).unwrap().name(), "b");
        assert!(g.layer(NodeId(99)).is_none());
    }

    #[test]
    fn topological_order_of_chain_is_insertion_order() {
        let g = linear_graph();
        let order = g.topological_order().unwrap();
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2)]);
        let names: Vec<_> = g
            .execution_order()
            .iter()
            .map(|l| l.name().to_string())
            .collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn branching_graph_respects_dependencies() {
        // Diamond: a -> {b, c} -> d
        let mut g = NetworkGraph::new("diamond");
        let a = g.add_layer(fc("a", 4, 8));
        let b = g.add_layer_after(a, fc("b", 8, 8));
        let c = g.add_layer_after(a, fc("c", 8, 8));
        let d = g.add_layer(fc("d", 16, 2));
        g.add_edge(b, d).unwrap();
        g.add_edge(c, d).unwrap();
        let order = g.topological_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        assert!(pos(a) < pos(b));
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(d));
        assert!(pos(c) < pos(d));
    }

    #[test]
    fn cycle_is_detected() {
        let mut g = NetworkGraph::new("cyclic");
        let a = g.add_layer(fc("a", 4, 4));
        let b = g.add_layer_after(a, fc("b", 4, 4));
        g.add_edge(b, a).unwrap();
        assert_eq!(g.topological_order(), Err(GraphError::CycleDetected));
    }

    #[test]
    fn unknown_node_edge_rejected() {
        let mut g = NetworkGraph::new("g");
        let a = g.add_layer(fc("a", 4, 4));
        assert_eq!(g.add_edge(a, NodeId(5)), Err(GraphError::UnknownNode(5)));
    }

    #[test]
    fn successors_and_predecessors() {
        let mut g = NetworkGraph::new("g");
        let a = g.add_layer(fc("a", 4, 4));
        let b = g.add_layer_after(a, fc("b", 4, 4));
        let c = g.add_layer_after(a, fc("c", 4, 4));
        assert_eq!(g.successors(a), vec![b, c]);
        assert_eq!(g.predecessors(b), vec![a]);
        assert!(g.predecessors(a).is_empty());
    }

    #[test]
    fn mac_and_weight_totals_sum_over_layers() {
        let g = linear_graph();
        assert_eq!(g.total_macs(), 4 * 8 + 8 * 16 + 16 * 2);
        assert_eq!(g.total_macs_for_batch(4), 4 * g.total_macs());
        assert_eq!(g.total_weights(), 4 * 8 + 8 * 16 + 16 * 2);
        assert_eq!(g.total_weight_bytes(), 2 * g.total_weights());
    }

    #[test]
    fn error_display_is_informative() {
        assert!(GraphError::UnknownNode(3).to_string().contains('3'));
        assert!(GraphError::CycleDetected.to_string().contains("cycle"));
    }
}
