//! Per-layer activation-density model (Figure 7 of the PREMA paper).
//!
//! The paper profiles VGGNet over 1000 ImageNet inferences and observes that
//! the per-layer activation density (the fraction of non-zero output
//! activations after ReLU) varies only slightly from input to input — this
//! stability is one of the two reasons DNN inference latency is predictable
//! even on sparsity-optimized NPUs (Section V-B, observation 3).
//!
//! We cannot re-run ImageNet through a GPU here, so this module substitutes a
//! synthetic generative model with the same qualitative shape: early
//! convolution layers are dense (~60–90 % non-zeros), density decays towards
//! the deeper layers (~20–40 %), fully-connected layers are sparsest, and the
//! per-input variation around each layer's mean density is small (a few
//! percent). The Figure 7 experiment consumes this model directly.

use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::layer::{Layer, LayerKind};
use crate::models::ModelKind;

/// Mean activation density and per-inference variation for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LayerDensityProfile {
    /// Mean fraction of non-zero output activations (0.0 – 1.0).
    pub mean_density: f64,
    /// Standard deviation of the density across inference inputs.
    pub std_dev: f64,
}

/// Synthetic activation-density model for a whole network.
///
/// ```
/// use dnn_models::{ActivationDensityModel, ModelKind, SeqSpec};
/// use rand::SeedableRng;
///
/// let net = ModelKind::CnnVggNet.build(1, SeqSpec::none());
/// let model = ActivationDensityModel::for_network(&net);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let sample = model.sample(&mut rng);
/// assert_eq!(sample.len(), model.profiles().len());
/// assert!(sample.iter().all(|&d| (0.0..=1.0).contains(&d)));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ActivationDensityModel {
    layer_names: Vec<String>,
    profiles: Vec<LayerDensityProfile>,
}

impl ActivationDensityModel {
    /// Builds the density model for every weight-bearing layer of a network.
    ///
    /// Only CONV/FC/RECR layers are profiled (they are the ones whose output
    /// activations feed a ReLU and therefore exhibit sparsity); pooling and
    /// stand-alone activation layers are skipped, matching the `c01..c13,
    /// fc1, fc2` x-axis of Figure 7.
    pub fn for_network(network: &crate::NetworkGraph) -> Self {
        let weighted: Vec<&Layer> = network
            .execution_order()
            .into_iter()
            .filter(|l| l.has_weights())
            .collect();
        let depth = weighted.len().max(1);
        let mut layer_names = Vec::with_capacity(weighted.len());
        let mut profiles = Vec::with_capacity(weighted.len());
        for (position, layer) in weighted.iter().enumerate() {
            layer_names.push(layer.name().to_string());
            profiles.push(Self::profile_for(layer, position, depth));
        }
        ActivationDensityModel {
            layer_names,
            profiles,
        }
    }

    /// Convenience constructor from a model kind at batch 1.
    pub fn for_model(kind: ModelKind) -> Self {
        Self::for_network(&kind.build(1, crate::SeqSpec::for_model(kind, 20)))
    }

    fn profile_for(layer: &Layer, position: usize, depth: usize) -> LayerDensityProfile {
        let relative_depth = position as f64 / depth.max(1) as f64;
        let mean_density = match layer.kind() {
            // Density decays with depth: early convs see dense natural-image
            // statistics, deep convs and classifiers see sparse ReLU outputs.
            LayerKind::Conv { .. } | LayerKind::DepthwiseConv { .. } => 0.85 - 0.5 * relative_depth,
            LayerKind::FullyConnected { .. } => 0.35 - 0.15 * relative_depth,
            LayerKind::Recurrent { .. } => 0.55 - 0.1 * relative_depth,
            LayerKind::Activation { .. } | LayerKind::Pool { .. } => 0.5,
        }
        .clamp(0.05, 0.95);
        // Small per-input variation, matching the narrow bands of Figure 7.
        let std_dev = 0.02 + 0.02 * relative_depth;
        LayerDensityProfile {
            mean_density,
            std_dev,
        }
    }

    /// The names of the profiled layers, in execution order.
    pub fn layer_names(&self) -> &[String] {
        &self.layer_names
    }

    /// The per-layer density profiles, in execution order.
    pub fn profiles(&self) -> &[LayerDensityProfile] {
        &self.profiles
    }

    /// Draws one inference's worth of per-layer densities.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        self.profiles
            .iter()
            .map(|p| {
                let normal = ApproxNormal::new(p.mean_density, p.std_dev);
                normal.sample(rng).clamp(0.0, 1.0)
            })
            .collect()
    }

    /// Draws `runs` inferences and returns, per layer, the observed
    /// (mean, min, max) densities — the statistics plotted in Figure 7.
    pub fn characterize<R: Rng + ?Sized>(&self, rng: &mut R, runs: usize) -> Vec<DensitySummary> {
        assert!(runs > 0, "at least one run is required");
        let mut summaries: Vec<DensitySummary> = self
            .profiles
            .iter()
            .map(|_| DensitySummary {
                mean: 0.0,
                min: f64::INFINITY,
                max: f64::NEG_INFINITY,
            })
            .collect();
        for _ in 0..runs {
            let sample = self.sample(rng);
            for (summary, value) in summaries.iter_mut().zip(sample) {
                summary.mean += value;
                summary.min = summary.min.min(value);
                summary.max = summary.max.max(value);
            }
        }
        for summary in &mut summaries {
            summary.mean /= runs as f64;
        }
        summaries
    }
}

/// Observed density statistics for one layer across many inferences.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensitySummary {
    /// Mean observed density.
    pub mean: f64,
    /// Minimum observed density.
    pub min: f64,
    /// Maximum observed density.
    pub max: f64,
}

/// A cheap approximation of a normal distribution (sum of uniform draws),
/// avoiding a dependency on `rand_distr`.
#[derive(Debug, Clone, Copy)]
struct ApproxNormal {
    mean: f64,
    std_dev: f64,
}

impl ApproxNormal {
    fn new(mean: f64, std_dev: f64) -> Self {
        ApproxNormal { mean, std_dev }
    }
}

impl Distribution<f64> for ApproxNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Irwin–Hall approximation: sum of 12 uniforms has variance 1.
        let sum: f64 = (0..12).map(|_| rng.gen::<f64>()).sum();
        self.mean + (sum - 6.0) * self.std_dev
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModelKind, SeqSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vgg_model() -> ActivationDensityModel {
        let net = ModelKind::CnnVggNet.build(1, SeqSpec::none());
        ActivationDensityModel::for_network(&net)
    }

    #[test]
    fn vgg_profiles_cover_all_weighted_layers() {
        let model = vgg_model();
        // VGG-16: 13 conv + 3 FC layers carry weights.
        assert_eq!(model.profiles().len(), 16);
        assert_eq!(model.layer_names().len(), 16);
    }

    #[test]
    fn densities_are_probabilities() {
        let model = vgg_model();
        for p in model.profiles() {
            assert!(p.mean_density > 0.0 && p.mean_density < 1.0);
            assert!(p.std_dev > 0.0 && p.std_dev < 0.1);
        }
    }

    #[test]
    fn density_decays_with_depth() {
        let model = vgg_model();
        let first = model.profiles().first().unwrap().mean_density;
        let last_conv = model.profiles()[12].mean_density;
        assert!(first > last_conv);
    }

    #[test]
    fn fc_layers_are_sparser_than_early_convs() {
        let model = vgg_model();
        let first_conv = model.profiles()[0].mean_density;
        let fc = model.profiles().last().unwrap().mean_density;
        assert!(fc < first_conv);
    }

    #[test]
    fn samples_are_bounded_and_vary_little() {
        let model = vgg_model();
        let mut rng = StdRng::seed_from_u64(42);
        let summaries = model.characterize(&mut rng, 200);
        for (summary, profile) in summaries.iter().zip(model.profiles()) {
            assert!(summary.min >= 0.0 && summary.max <= 1.0);
            assert!((summary.mean - profile.mean_density).abs() < 0.05);
            // The min-max band stays narrow, as in Figure 7.
            assert!(summary.max - summary.min < 0.4);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let model = vgg_model();
        let a = model.sample(&mut StdRng::seed_from_u64(1));
        let b = model.sample(&mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn characterize_requires_runs() {
        let model = vgg_model();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = model.characterize(&mut rng, 0);
    }

    #[test]
    fn for_model_convenience_matches_network_build() {
        let via_kind = ActivationDensityModel::for_model(ModelKind::CnnAlexNet);
        let via_net =
            ActivationDensityModel::for_network(&ModelKind::CnnAlexNet.build(1, SeqSpec::none()));
        assert_eq!(via_kind.profiles().len(), via_net.profiles().len());
    }
}
