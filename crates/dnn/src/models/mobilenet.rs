//! CNN-MN: MobileNet v1 (Howard et al., 2017).
//!
//! A stem convolution followed by 13 depthwise-separable blocks (depthwise
//! 3×3 + pointwise 1×1), global average pooling and a classifier. The
//! depthwise layers have tiny reduction depths and therefore badly
//! underutilize a 128×128 systolic array — these are the red-circled points
//! of Figure 10 in the paper. Roughly 0.57 GMACs and 4.2 M parameters per
//! 224×224 image.

use crate::graph::NetworkGraph;
use crate::layer::{ActivationKind, Layer, LayerKind, PoolKind};

use super::builders::{conv_relu, depthwise_relu, fully_connected, pool};

/// One depthwise-separable block: (input channels, output channels,
/// depthwise stride, input spatial size).
const BLOCKS: [(u64, u64, u64, u64); 13] = [
    (32, 64, 1, 112),
    (64, 128, 2, 112),
    (128, 128, 1, 56),
    (128, 256, 2, 56),
    (256, 256, 1, 28),
    (256, 512, 2, 28),
    (512, 512, 1, 14),
    (512, 512, 1, 14),
    (512, 512, 1, 14),
    (512, 512, 1, 14),
    (512, 512, 1, 14),
    (512, 1024, 2, 14),
    (1024, 1024, 1, 7),
];

/// Builds the MobileNet v1 graph.
pub fn build() -> NetworkGraph {
    let mut g = NetworkGraph::new("mobilenet_v1");

    let stem = g.add_layer(
        Layer::new(
            "conv_stem",
            LayerKind::Conv {
                in_channels: 3,
                out_channels: 32,
                kernel: (3, 3),
                stride: (2, 2),
                padding: (1, 1),
                input_hw: (224, 224),
            },
        )
        .fused(ActivationKind::Relu),
    );

    let mut node = stem;
    for (idx, &(in_ch, out_ch, stride, hw)) in BLOCKS.iter().enumerate() {
        let block = idx + 1;
        let dw = depthwise_relu(&mut g, node, &format!("dw{block}"), in_ch, 3, stride, 1, hw);
        let pw_hw = if stride == 2 { hw / 2 } else { hw };
        node = conv_relu(
            &mut g,
            dw,
            &format!("pw{block}"),
            in_ch,
            out_ch,
            1,
            1,
            0,
            pw_hw,
        );
    }

    let avg = pool(&mut g, node, "avg_pool", PoolKind::Avg, 7, 1, 1024, 7);
    let _fc = fully_connected(&mut g, avg, "fc", 1024, 1000, Some(ActivationKind::Softmax));

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_inventory() {
        let g = build();
        // stem + 13*(dw + pw) + avgpool + fc = 29 layers.
        assert_eq!(g.layer_count(), 29);
        let dw_count = g
            .layers()
            .filter(|(_, l)| matches!(l.kind(), LayerKind::DepthwiseConv { .. }))
            .count();
        assert_eq!(dw_count, 13);
    }

    #[test]
    fn parameter_count_matches_reference() {
        // MobileNet v1 has ~4.2 M parameters.
        let params = build().total_weights();
        assert!(params > 3_500_000 && params < 5_000_000, "{params}");
    }

    #[test]
    fn mac_count_matches_reference() {
        // ~0.57 GMACs per image.
        let macs = build().total_macs();
        assert!(macs > 400_000_000 && macs < 800_000_000, "{macs}");
    }

    #[test]
    fn depthwise_layers_have_shallow_reductions() {
        let g = build();
        for (_, layer) in g.layers() {
            if matches!(layer.kind(), LayerKind::DepthwiseConv { .. }) {
                let dims = layer.gemm_dims(1).unwrap();
                assert_eq!(dims.k, 9, "depthwise reduction depth is the 3x3 window");
            }
        }
    }
}
