//! RNN-ASR: automatic speech recognition based on the Listen, Attend and
//! Spell architecture (Chan et al., 2015).
//!
//! The *listener* is a three-layer pyramidal bidirectional LSTM over the
//! audio-frame sequence: each successive layer halves the number of time
//! steps, and each step runs a forward and a backward cell. The *speller* is
//! a two-layer LSTM decoder with an attention projection and a character
//! classifier, unrolled for the (input-data dependent) output text length.

use crate::graph::NetworkGraph;
use crate::layer::ActivationKind;

use super::builders::{fully_connected, lstm_step};
use super::SeqSpec;

/// Acoustic feature dimension per frame.
const FEATURES: u64 = 256;
/// Listener / speller hidden size.
const HIDDEN: u64 = 512;
/// Number of pyramidal listener layers.
const LISTENER_LAYERS: u64 = 3;
/// Number of speller layers.
const SPELLER_LAYERS: u64 = 2;
/// Output character-set size.
const CHARSET: u64 = 30;

/// Builds the time-unrolled Listen-Attend-Spell graph.
pub fn build(seq: SeqSpec) -> NetworkGraph {
    let frames = seq.input_len.max(1);
    let out_steps = seq.output_len.max(1);
    let mut g = NetworkGraph::new("rnn_asr");

    // Listener: pyramidal BLSTM. Layer `l` processes frames / 2^l steps, two
    // directions per step.
    let mut prev = None;
    for layer in 0..LISTENER_LAYERS {
        let steps = (frames >> layer).max(1);
        // The first layer reads acoustic features; deeper layers read the
        // concatenated bidirectional outputs of the previous layer.
        let input_size = if layer == 0 { FEATURES } else { 2 * HIDDEN };
        for t in 0..steps {
            for direction in ["fwd", "bwd"] {
                let name = format!("listen_l{layer}_{direction}_t{t}");
                let node = match prev {
                    Some(p) => lstm_step(&mut g, p, &name, input_size, HIDDEN),
                    None => g.add_layer(crate::layer::Layer::new(
                        name,
                        crate::layer::LayerKind::Recurrent {
                            kind: crate::layer::RecurrentKind::Lstm,
                            input_size,
                            hidden_size: HIDDEN,
                        },
                    )),
                };
                prev = Some(node);
            }
        }
    }
    let mut prev = prev.expect("listener unrolled at least one step");

    // Speller: attention-equipped LSTM decoder emitting characters.
    for t in 0..out_steps {
        for layer in 0..SPELLER_LAYERS {
            let input_size = if layer == 0 { 2 * HIDDEN } else { HIDDEN };
            prev = lstm_step(
                &mut g,
                prev,
                &format!("spell_l{layer}_t{t}"),
                input_size,
                HIDDEN,
            );
        }
        prev = fully_connected(
            &mut g,
            prev,
            &format!("attention_t{t}"),
            2 * HIDDEN,
            HIDDEN,
            Some(ActivationKind::Tanh),
        );
        prev = fully_connected(
            &mut g,
            prev,
            &format!("char_t{t}"),
            HIDDEN,
            CHARSET,
            Some(ActivationKind::Softmax),
        );
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pyramidal_listener_halves_steps_per_layer() {
        let g = build(SeqSpec::new(40, 10));
        let count = |prefix: &str| {
            g.layers()
                .filter(|(_, l)| l.name().starts_with(prefix))
                .count()
        };
        assert_eq!(count("listen_l0_"), 40 * 2);
        assert_eq!(count("listen_l1_"), 20 * 2);
        assert_eq!(count("listen_l2_"), 10 * 2);
    }

    #[test]
    fn speller_layer_count_follows_output_length() {
        let g = build(SeqSpec::new(40, 10));
        let spell_layers = g
            .layers()
            .filter(|(_, l)| l.name().starts_with("spell_"))
            .count();
        assert_eq!(spell_layers, 10 * SPELLER_LAYERS as usize);
    }

    #[test]
    fn longer_audio_increases_compute() {
        let short = build(SeqSpec::new(20, 10)).total_macs();
        let long = build(SeqSpec::new(100, 10)).total_macs();
        assert!(long > 3 * short);
    }

    #[test]
    fn graph_is_acyclic() {
        assert!(build(SeqSpec::new(24, 12)).topological_order().is_ok());
    }
}
