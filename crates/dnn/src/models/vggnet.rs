//! CNN-VN: VGG-16 (Simonyan & Zisserman, 2015).
//!
//! 13 3×3 convolution layers in five blocks, followed by three
//! fully-connected layers. Roughly 15.5 GMACs and 138 M parameters per
//! 224×224 image — the longest-running CNN in the PREMA evaluation.

use crate::graph::NetworkGraph;
use crate::layer::{ActivationKind, Layer, LayerKind, PoolKind};

use super::builders::{conv_relu, fully_connected, pool};

/// Builds the VGG-16 graph.
pub fn build() -> NetworkGraph {
    let mut g = NetworkGraph::new("vgg16");

    let c01 = g.add_layer(
        Layer::new(
            "c01",
            LayerKind::Conv {
                in_channels: 3,
                out_channels: 64,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                input_hw: (224, 224),
            },
        )
        .fused(ActivationKind::Relu),
    );
    let c02 = conv_relu(&mut g, c01, "c02", 64, 64, 3, 1, 1, 224);
    let p1 = pool(&mut g, c02, "pool1", PoolKind::Max, 2, 2, 64, 224);

    let c03 = conv_relu(&mut g, p1, "c03", 64, 128, 3, 1, 1, 112);
    let c04 = conv_relu(&mut g, c03, "c04", 128, 128, 3, 1, 1, 112);
    let p2 = pool(&mut g, c04, "pool2", PoolKind::Max, 2, 2, 128, 112);

    let c05 = conv_relu(&mut g, p2, "c05", 128, 256, 3, 1, 1, 56);
    let c06 = conv_relu(&mut g, c05, "c06", 256, 256, 3, 1, 1, 56);
    let c07 = conv_relu(&mut g, c06, "c07", 256, 256, 3, 1, 1, 56);
    let p3 = pool(&mut g, c07, "pool3", PoolKind::Max, 2, 2, 256, 56);

    let c08 = conv_relu(&mut g, p3, "c08", 256, 512, 3, 1, 1, 28);
    let c09 = conv_relu(&mut g, c08, "c09", 512, 512, 3, 1, 1, 28);
    let c10 = conv_relu(&mut g, c09, "c10", 512, 512, 3, 1, 1, 28);
    let p4 = pool(&mut g, c10, "pool4", PoolKind::Max, 2, 2, 512, 28);

    let c11 = conv_relu(&mut g, p4, "c11", 512, 512, 3, 1, 1, 14);
    let c12 = conv_relu(&mut g, c11, "c12", 512, 512, 3, 1, 1, 14);
    let c13 = conv_relu(&mut g, c12, "c13", 512, 512, 3, 1, 1, 14);
    let p5 = pool(&mut g, c13, "pool5", PoolKind::Max, 2, 2, 512, 14);

    let fc1 = fully_connected(
        &mut g,
        p5,
        "fc1",
        512 * 7 * 7,
        4096,
        Some(ActivationKind::Relu),
    );
    let fc2 = fully_connected(&mut g, fc1, "fc2", 4096, 4096, Some(ActivationKind::Relu));
    let _fc3 = fully_connected(
        &mut g,
        fc2,
        "fc3",
        4096,
        1000,
        Some(ActivationKind::Softmax),
    );

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_inventory() {
        let g = build();
        // 13 conv + 5 pool + 3 fc = 21 layers.
        assert_eq!(g.layer_count(), 21);
        let conv_count = g
            .layers()
            .filter(|(_, l)| matches!(l.kind(), LayerKind::Conv { .. }))
            .count();
        assert_eq!(conv_count, 13);
    }

    #[test]
    fn parameter_count_matches_reference() {
        // VGG-16 has ~138 M parameters.
        let params = build().total_weights();
        assert!(params > 130_000_000 && params < 145_000_000, "{params}");
    }

    #[test]
    fn mac_count_matches_reference() {
        // ~15.5 GMACs per image.
        let macs = build().total_macs();
        assert!(macs > 14_000_000_000 && macs < 17_000_000_000, "{macs}");
    }

    #[test]
    fn fc1_is_the_biggest_weight_layer() {
        let g = build();
        let fc1 = g
            .layers()
            .find(|(_, l)| l.name() == "fc1")
            .map(|(_, l)| l.weight_count())
            .unwrap();
        assert_eq!(fc1, 512 * 7 * 7 * 4096);
        assert!(g.layers().all(|(_, l)| l.weight_count() <= fc1));
    }
}
