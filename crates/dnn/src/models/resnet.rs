//! ResNet-50 (He et al., 2016).
//!
//! Used by the Figure 1 co-location experiment, which co-locates GoogLeNet
//! and ResNet on one accelerator. A 7×7 stem, four stages of bottleneck
//! blocks ([3, 4, 6, 3] blocks with 1×1 → 3×3 → 1×1 convolutions plus a
//! projection shortcut on the first block of each stage), global average
//! pooling and a classifier. Roughly 4 GMACs and 25 M parameters per
//! 224×224 image.

use crate::graph::{NetworkGraph, NodeId};
use crate::layer::{ActivationKind, Layer, LayerKind, PoolKind};

use super::builders::{conv_relu, elementwise, fully_connected, pool};

struct StageSpec {
    name: &'static str,
    blocks: usize,
    mid_channels: u64,
    out_channels: u64,
    /// Spatial size of the stage's *output* feature maps.
    spatial: u64,
    /// Stride applied by the first block of the stage.
    first_stride: u64,
}

/// Appends one bottleneck block, returning the post-addition node.
#[allow(clippy::too_many_arguments)]
fn bottleneck(
    g: &mut NetworkGraph,
    from: NodeId,
    name: &str,
    in_channels: u64,
    mid_channels: u64,
    out_channels: u64,
    input_hw: u64,
    stride: u64,
) -> NodeId {
    let out_hw = input_hw / stride;
    let a = conv_relu(
        g,
        from,
        &format!("{name}_1x1a"),
        in_channels,
        mid_channels,
        1,
        stride,
        0,
        input_hw,
    );
    let b = conv_relu(
        g,
        a,
        &format!("{name}_3x3"),
        mid_channels,
        mid_channels,
        3,
        1,
        1,
        out_hw,
    );
    let c = conv_relu(
        g,
        b,
        &format!("{name}_1x1b"),
        mid_channels,
        out_channels,
        1,
        1,
        0,
        out_hw,
    );

    // Projection shortcut when the shape changes, identity otherwise.
    let needs_projection = in_channels != out_channels || stride != 1;
    let shortcut_end = if needs_projection {
        conv_relu(
            g,
            from,
            &format!("{name}_proj"),
            in_channels,
            out_channels,
            1,
            stride,
            0,
            input_hw,
        )
    } else {
        from
    };

    // Residual addition followed by ReLU, executed on the vector unit.
    let add = elementwise(
        g,
        c,
        &format!("{name}_add"),
        ActivationKind::Relu,
        out_channels * out_hw * out_hw,
    );
    g.add_edge(shortcut_end, add)
        .expect("shortcut joins the residual addition");
    add
}

/// Builds the ResNet-50 graph.
pub fn build() -> NetworkGraph {
    let mut g = NetworkGraph::new("resnet50");

    let stem = g.add_layer(
        Layer::new(
            "conv1",
            LayerKind::Conv {
                in_channels: 3,
                out_channels: 64,
                kernel: (7, 7),
                stride: (2, 2),
                padding: (3, 3),
                input_hw: (224, 224),
            },
        )
        .fused(ActivationKind::Relu),
    );
    let mut node = pool(&mut g, stem, "pool1", PoolKind::Max, 3, 2, 64, 112);

    let stages = [
        StageSpec {
            name: "res2",
            blocks: 3,
            mid_channels: 64,
            out_channels: 256,
            spatial: 56,
            first_stride: 1,
        },
        StageSpec {
            name: "res3",
            blocks: 4,
            mid_channels: 128,
            out_channels: 512,
            spatial: 28,
            first_stride: 2,
        },
        StageSpec {
            name: "res4",
            blocks: 6,
            mid_channels: 256,
            out_channels: 1024,
            spatial: 14,
            first_stride: 2,
        },
        StageSpec {
            name: "res5",
            blocks: 3,
            mid_channels: 512,
            out_channels: 2048,
            spatial: 7,
            first_stride: 2,
        },
    ];

    let mut in_channels = 64;
    for stage in &stages {
        for block in 0..stage.blocks {
            let (stride, input_hw) = if block == 0 {
                (stage.first_stride, stage.spatial * stage.first_stride)
            } else {
                (1, stage.spatial)
            };
            node = bottleneck(
                &mut g,
                node,
                &format!("{}_{}", stage.name, block + 1),
                in_channels,
                stage.mid_channels,
                stage.out_channels,
                input_hw,
                stride,
            );
            in_channels = stage.out_channels;
        }
    }

    let avg = pool(&mut g, node, "avg_pool", PoolKind::Avg, 7, 1, 2048, 7);
    let _fc = fully_connected(&mut g, avg, "fc", 2048, 1000, Some(ActivationKind::Softmax));

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_sixteen_bottleneck_blocks() {
        let g = build();
        let adds = g
            .layers()
            .filter(|(_, l)| l.name().ends_with("_add"))
            .count();
        assert_eq!(adds, 3 + 4 + 6 + 3);
    }

    #[test]
    fn has_four_projection_shortcuts() {
        let g = build();
        let projections = g
            .layers()
            .filter(|(_, l)| l.name().ends_with("_proj"))
            .count();
        assert_eq!(projections, 4);
    }

    #[test]
    fn parameter_count_matches_reference() {
        // ResNet-50 has ~25.5 M parameters.
        let params = build().total_weights();
        assert!(params > 22_000_000 && params < 28_000_000, "{params}");
    }

    #[test]
    fn mac_count_matches_reference() {
        // ~4 GMACs per image.
        let macs = build().total_macs();
        assert!(macs > 3_200_000_000 && macs < 5_000_000_000, "{macs}");
    }

    #[test]
    fn graph_is_acyclic_despite_shortcuts() {
        assert!(build().topological_order().is_ok());
    }
}
