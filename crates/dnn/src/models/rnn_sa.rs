//! RNN-SA: LSTM-based sentiment analysis (MLPerf cloud inference style).
//!
//! A two-layer LSTM (hidden size 512) consumes the input token sequence; the
//! final hidden state feeds a small classifier. The time-unrolled recurrence
//! length equals the input sequence length — the *linear* input/output
//! relationship of Figure 8(b) — so the output sequence length is statically
//! known as soon as the request arrives.

use crate::graph::NetworkGraph;
use crate::layer::ActivationKind;

use super::builders::{fully_connected, lstm_step};
use super::SeqSpec;

/// Embedding / input feature dimension per token.
const INPUT_DIM: u64 = 256;
/// LSTM hidden state size.
const HIDDEN: u64 = 512;
/// Number of stacked LSTM layers.
const LAYERS: u64 = 2;
/// Number of sentiment classes.
const CLASSES: u64 = 2;

/// Builds the time-unrolled sentiment-analysis graph for the given sequence
/// specification. Only `seq.input_len` matters; the recurrence is unrolled
/// exactly that many steps.
pub fn build(seq: SeqSpec) -> NetworkGraph {
    let steps = seq.input_len.max(1);
    let mut g = NetworkGraph::new("rnn_sa");

    let mut prev = None;
    for t in 0..steps {
        for layer in 0..LAYERS {
            let input_size = if layer == 0 { INPUT_DIM } else { HIDDEN };
            let name = format!("lstm_l{layer}_t{t}");
            let node = match prev {
                Some(p) => lstm_step(&mut g, p, &name, input_size, HIDDEN),
                None => g.add_layer(crate::layer::Layer::new(
                    name,
                    crate::layer::LayerKind::Recurrent {
                        kind: crate::layer::RecurrentKind::Lstm,
                        input_size,
                        hidden_size: HIDDEN,
                    },
                )),
            };
            prev = Some(node);
        }
    }

    let last = prev.expect("at least one step was unrolled");
    let _classifier = fully_connected(
        &mut g,
        last,
        "classifier",
        HIDDEN,
        CLASSES,
        Some(ActivationKind::Softmax),
    );

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unrolls_two_layers_per_step_plus_classifier() {
        let g = build(SeqSpec::new(10, 10));
        assert_eq!(g.layer_count(), 10 * 2 + 1);
    }

    #[test]
    fn longer_inputs_mean_proportionally_more_compute() {
        let short = build(SeqSpec::new(5, 5)).total_macs();
        let long = build(SeqSpec::new(50, 50)).total_macs();
        assert!(long > 9 * short && long < 11 * short);
    }

    #[test]
    fn output_length_is_irrelevant_for_sentiment_analysis() {
        let a = build(SeqSpec::new(10, 10)).total_macs();
        let b = build(SeqSpec::new(10, 37)).total_macs();
        assert_eq!(a, b);
    }

    #[test]
    fn graph_is_a_chain() {
        let g = build(SeqSpec::new(8, 8));
        assert_eq!(g.edge_count(), g.layer_count() - 1);
        assert!(g.topological_order().is_ok());
    }
}
