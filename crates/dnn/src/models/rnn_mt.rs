//! RNN-MT1 / RNN-MT2: LSTM sequence-to-sequence machine translation
//! (GNMT-style encoder/decoder, Figure 8(c) of the PREMA paper).
//!
//! A four-layer LSTM encoder (hidden 1024) consumes the source sentence; a
//! four-layer LSTM decoder with an attention projection and a large
//! vocabulary projection emits the target sentence one token at a time. The
//! number of decoder steps (the time-unrolled recurrence length) is
//! input-data dependent — the *non-linear* relationship PREMA's regression
//! model predicts. RNN-MT1 and RNN-MT2 share the architecture but target
//! different languages, so they differ in output vocabulary size and in
//! their input→output length characteristics.

use crate::graph::NetworkGraph;
use crate::layer::ActivationKind;

use super::builders::{fully_connected, lstm_step};
use super::SeqSpec;

/// Embedding dimension of source and target tokens.
const EMBED: u64 = 1024;
/// LSTM hidden state size.
const HIDDEN: u64 = 1024;
/// Encoder / decoder depth.
const LAYERS: u64 = 4;

/// Builds the time-unrolled translation graph.
///
/// `vocab` is the target-language vocabulary size used by the per-step output
/// projection; `seq.input_len` encoder steps and `seq.output_len` decoder
/// steps are unrolled.
pub fn build(name: &str, vocab: u64, seq: SeqSpec) -> NetworkGraph {
    let enc_steps = seq.input_len.max(1);
    let dec_steps = seq.output_len.max(1);
    let mut g = NetworkGraph::new(name);

    // Encoder.
    let mut prev = None;
    for t in 0..enc_steps {
        for layer in 0..LAYERS {
            let input_size = if layer == 0 { EMBED } else { HIDDEN };
            let name = format!("enc_l{layer}_t{t}");
            let node = match prev {
                Some(p) => lstm_step(&mut g, p, &name, input_size, HIDDEN),
                None => g.add_layer(crate::layer::Layer::new(
                    name,
                    crate::layer::LayerKind::Recurrent {
                        kind: crate::layer::RecurrentKind::Lstm,
                        input_size,
                        hidden_size: HIDDEN,
                    },
                )),
            };
            prev = Some(node);
        }
    }
    let mut prev = prev.expect("encoder unrolled at least one step");

    // Decoder: LSTM stack + attention context projection + vocabulary
    // projection with softmax, per generated token.
    for t in 0..dec_steps {
        for layer in 0..LAYERS {
            let input_size = if layer == 0 { EMBED } else { HIDDEN };
            prev = lstm_step(
                &mut g,
                prev,
                &format!("dec_l{layer}_t{t}"),
                input_size,
                HIDDEN,
            );
        }
        prev = fully_connected(
            &mut g,
            prev,
            &format!("attention_t{t}"),
            2 * HIDDEN,
            HIDDEN,
            Some(ActivationKind::Tanh),
        );
        prev = fully_connected(
            &mut g,
            prev,
            &format!("proj_t{t}"),
            HIDDEN,
            vocab,
            Some(ActivationKind::Softmax),
        );
    }

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_count_scales_with_both_sequence_lengths() {
        let g = build("mt", 32_000, SeqSpec::new(10, 12));
        // 10*4 encoder + 12*(4 + 2) decoder layers.
        assert_eq!(g.layer_count(), 40 + 72);
    }

    #[test]
    fn decoder_steps_dominate_when_output_is_long() {
        let short_out = build("mt", 32_000, SeqSpec::new(20, 5)).total_macs();
        let long_out = build("mt", 32_000, SeqSpec::new(20, 40)).total_macs();
        assert!(long_out > 2 * short_out);
    }

    #[test]
    fn vocabulary_size_affects_weights_and_macs() {
        let small = build("mt", 32_000, SeqSpec::new(10, 10));
        let large = build("mt", 42_000, SeqSpec::new(10, 10));
        assert!(large.total_weights() > small.total_weights());
        assert!(large.total_macs() > small.total_macs());
    }

    #[test]
    fn graph_is_an_acyclic_chain() {
        let g = build("mt", 32_000, SeqSpec::new(7, 9));
        assert!(g.topological_order().is_ok());
        assert_eq!(g.edge_count(), g.layer_count() - 1);
    }
}
