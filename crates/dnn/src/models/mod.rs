//! The model zoo: the eight DNNs of the PREMA evaluation (Section III) plus
//! ResNet-50 (used by the Figure 1 co-location experiment).
//!
//! | Paper name | [`ModelKind`] | Topology |
//! |---|---|---|
//! | CNN-AN | [`ModelKind::CnnAlexNet`] | AlexNet |
//! | CNN-GN | [`ModelKind::CnnGoogLeNet`] | GoogLeNet (Inception v1) |
//! | CNN-VN | [`ModelKind::CnnVggNet`] | VGG-16 |
//! | CNN-MN | [`ModelKind::CnnMobileNet`] | MobileNet v1 |
//! | RNN-SA | [`ModelKind::RnnSentiment`] | 2-layer LSTM sentiment analysis |
//! | RNN-MT1 | [`ModelKind::RnnTranslation1`] | 4+4-layer LSTM seq2seq (English→German) |
//! | RNN-MT2 | [`ModelKind::RnnTranslation2`] | 4+4-layer LSTM seq2seq (English→Korean) |
//! | RNN-ASR | [`ModelKind::RnnSpeech`] | Listen-Attend-Spell speech recognition |
//! | — | [`ModelKind::ResNet50`] | ResNet-50, used in Figure 1 only |
//!
//! CNN topologies are statically shaped; RNN topologies are time-unrolled at
//! build time according to a [`SeqSpec`] (Figure 8 of the paper).

mod alexnet;
mod googlenet;
mod mobilenet;
mod resnet;
mod rnn_asr;
mod rnn_mt;
mod rnn_sa;
mod vggnet;

pub(crate) mod builders;

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::graph::NetworkGraph;

/// Sequence-length specification for time-unrolled RNN models.
///
/// CNNs ignore the specification entirely ([`SeqSpec::none`]). For RNNs the
/// input length is known statically before inference starts (it is the length
/// of the request's input sentence / audio clip), while the output length is
/// the dynamically determined number of unrolled decoder steps — the quantity
/// PREMA's regression model predicts (Section V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SeqSpec {
    /// Input sequence length (tokens / audio frames), statically known.
    pub input_len: u64,
    /// Output sequence length (decoder steps), input-data dependent.
    pub output_len: u64,
}

impl SeqSpec {
    /// The empty specification used by CNNs.
    pub fn none() -> Self {
        SeqSpec {
            input_len: 0,
            output_len: 0,
        }
    }

    /// Creates a specification with explicit input and output lengths.
    pub fn new(input_len: u64, output_len: u64) -> Self {
        SeqSpec {
            input_len,
            output_len,
        }
    }

    /// Builds the specification a given model would *expect* for an input of
    /// `input_len`, using the deterministic mean input→output relationship of
    /// Figure 9 (no sampling noise). CNNs return [`SeqSpec::none`].
    pub fn for_model(kind: ModelKind, input_len: u64) -> Self {
        if !kind.is_rnn() {
            return SeqSpec::none();
        }
        SeqSpec {
            input_len,
            output_len: kind.expected_output_len(input_len),
        }
    }
}

impl Default for SeqSpec {
    fn default() -> Self {
        SeqSpec::none()
    }
}

/// The networks available in the model zoo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ModelKind {
    /// CNN-AN: AlexNet.
    CnnAlexNet,
    /// CNN-GN: GoogLeNet (Inception v1).
    CnnGoogLeNet,
    /// CNN-VN: VGG-16.
    CnnVggNet,
    /// CNN-MN: MobileNet v1.
    CnnMobileNet,
    /// RNN-SA: LSTM sentiment analysis (linear input→output relationship).
    RnnSentiment,
    /// RNN-MT1: LSTM seq2seq machine translation, English→German.
    RnnTranslation1,
    /// RNN-MT2: LSTM seq2seq machine translation, English→Korean.
    RnnTranslation2,
    /// RNN-ASR: Listen-Attend-Spell automatic speech recognition.
    RnnSpeech,
    /// ResNet-50, used by the Figure 1 co-location experiment.
    ResNet50,
}

/// The eight DNNs used throughout the paper's evaluation (Figures 5, 6, 10,
/// 11, 12, 13, 14, 15).
pub const ALL_EVAL_MODELS: [ModelKind; 8] = [
    ModelKind::CnnAlexNet,
    ModelKind::CnnGoogLeNet,
    ModelKind::CnnVggNet,
    ModelKind::CnnMobileNet,
    ModelKind::RnnSentiment,
    ModelKind::RnnTranslation1,
    ModelKind::RnnTranslation2,
    ModelKind::RnnSpeech,
];

/// The four CNN models of the evaluation.
pub const CNN_MODELS: [ModelKind; 4] = [
    ModelKind::CnnAlexNet,
    ModelKind::CnnGoogLeNet,
    ModelKind::CnnVggNet,
    ModelKind::CnnMobileNet,
];

/// The four RNN models of the evaluation.
pub const RNN_MODELS: [ModelKind; 4] = [
    ModelKind::RnnSentiment,
    ModelKind::RnnTranslation1,
    ModelKind::RnnTranslation2,
    ModelKind::RnnSpeech,
];

impl ModelKind {
    /// The short name the paper uses in figures ("CNN-AN", "RNN-MT1", ...).
    pub fn paper_name(self) -> &'static str {
        match self {
            ModelKind::CnnAlexNet => "CNN-AN",
            ModelKind::CnnGoogLeNet => "CNN-GN",
            ModelKind::CnnVggNet => "CNN-VN",
            ModelKind::CnnMobileNet => "CNN-MN",
            ModelKind::RnnSentiment => "RNN-SA",
            ModelKind::RnnTranslation1 => "RNN-MT1",
            ModelKind::RnnTranslation2 => "RNN-MT2",
            ModelKind::RnnSpeech => "RNN-ASR",
            ModelKind::ResNet50 => "ResNet",
        }
    }

    /// Whether the model is a time-unrolled recurrent network.
    pub fn is_rnn(self) -> bool {
        matches!(
            self,
            ModelKind::RnnSentiment
                | ModelKind::RnnTranslation1
                | ModelKind::RnnTranslation2
                | ModelKind::RnnSpeech
        )
    }

    /// Whether the output sequence length is a non-linear (input-data
    /// dependent) function of the input length, requiring the profile-driven
    /// regression model of Section V-B.
    pub fn has_dynamic_output_len(self) -> bool {
        matches!(
            self,
            ModelKind::RnnTranslation1 | ModelKind::RnnTranslation2 | ModelKind::RnnSpeech
        )
    }

    /// The range of input sequence lengths the application is profiled over
    /// (x-axes of Figure 9). CNNs return `(0, 0)`.
    pub fn input_len_range(self) -> (u64, u64) {
        match self {
            ModelKind::RnnSentiment => (5, 50),
            ModelKind::RnnTranslation1 | ModelKind::RnnTranslation2 => (5, 50),
            ModelKind::RnnSpeech => (20, 100),
            _ => (0, 0),
        }
    }

    /// The mean output sequence length for a given input length, i.e. the
    /// deterministic part of the characterization graphs of Figure 9.
    ///
    /// * RNN-SA: output length equals input length (linear, Figure 8(b)).
    /// * RNN-MT1 (English→German): German sentences are slightly longer.
    /// * RNN-MT2 (English→Korean): Korean sentences are shorter.
    /// * RNN-ASR: text output is much shorter than the audio-frame input.
    pub fn expected_output_len(self, input_len: u64) -> u64 {
        let out = match self {
            ModelKind::RnnSentiment => input_len as f64,
            ModelKind::RnnTranslation1 => 1.15 * input_len as f64,
            ModelKind::RnnTranslation2 => 0.80 * input_len as f64,
            ModelKind::RnnSpeech => 0.45 * input_len as f64,
            _ => 0.0,
        };
        (out.round() as u64).max(if self.is_rnn() { 1 } else { 0 })
    }

    /// Builds the network graph for this model at the given batch size and
    /// (for RNNs) sequence specification.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero, or if an RNN model is built with a zero
    /// input or output sequence length.
    pub fn build(self, batch: u64, seq: SeqSpec) -> NetworkGraph {
        assert!(batch > 0, "batch size must be non-zero");
        if self.is_rnn() {
            assert!(
                seq.input_len > 0 && seq.output_len > 0,
                "RNN models require non-zero sequence lengths"
            );
        }
        match self {
            ModelKind::CnnAlexNet => alexnet::build(),
            ModelKind::CnnGoogLeNet => googlenet::build(),
            ModelKind::CnnVggNet => vggnet::build(),
            ModelKind::CnnMobileNet => mobilenet::build(),
            ModelKind::ResNet50 => resnet::build(),
            ModelKind::RnnSentiment => rnn_sa::build(seq),
            ModelKind::RnnTranslation1 => rnn_mt::build("rnn_mt1", 32_000, seq),
            ModelKind::RnnTranslation2 => rnn_mt::build("rnn_mt2", 42_000, seq),
            ModelKind::RnnSpeech => rnn_asr::build(seq),
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eval_models_has_four_cnns_and_four_rnns() {
        assert_eq!(ALL_EVAL_MODELS.len(), 8);
        assert_eq!(ALL_EVAL_MODELS.iter().filter(|m| m.is_rnn()).count(), 4);
        assert_eq!(CNN_MODELS.iter().filter(|m| !m.is_rnn()).count(), 4);
        assert_eq!(RNN_MODELS.iter().filter(|m| m.is_rnn()).count(), 4);
    }

    #[test]
    fn paper_names_are_unique_and_nonempty() {
        let mut names: Vec<_> = ALL_EVAL_MODELS.iter().map(|m| m.paper_name()).collect();
        names.push(ModelKind::ResNet50.paper_name());
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn display_matches_paper_name() {
        assert_eq!(ModelKind::CnnAlexNet.to_string(), "CNN-AN");
        assert_eq!(ModelKind::RnnSpeech.to_string(), "RNN-ASR");
    }

    #[test]
    fn seq_spec_for_cnn_is_none() {
        assert_eq!(
            SeqSpec::for_model(ModelKind::CnnVggNet, 30),
            SeqSpec::none()
        );
        assert_eq!(SeqSpec::default(), SeqSpec::none());
    }

    #[test]
    fn seq_spec_for_rnn_uses_expected_relation() {
        let spec = SeqSpec::for_model(ModelKind::RnnSentiment, 20);
        assert_eq!(spec, SeqSpec::new(20, 20));
        let mt = SeqSpec::for_model(ModelKind::RnnTranslation1, 20);
        assert_eq!(mt.output_len, 23);
        let asr = SeqSpec::for_model(ModelKind::RnnSpeech, 100);
        assert_eq!(asr.output_len, 45);
    }

    #[test]
    fn expected_output_len_is_at_least_one_for_rnns() {
        for kind in RNN_MODELS {
            assert!(kind.expected_output_len(1) >= 1);
        }
        assert_eq!(ModelKind::CnnAlexNet.expected_output_len(10), 0);
    }

    #[test]
    fn dynamic_output_len_only_for_seq2seq_models() {
        assert!(!ModelKind::RnnSentiment.has_dynamic_output_len());
        assert!(ModelKind::RnnTranslation1.has_dynamic_output_len());
        assert!(ModelKind::RnnTranslation2.has_dynamic_output_len());
        assert!(ModelKind::RnnSpeech.has_dynamic_output_len());
        assert!(!ModelKind::CnnMobileNet.has_dynamic_output_len());
    }

    #[test]
    fn input_ranges_are_sane() {
        for kind in RNN_MODELS {
            let (lo, hi) = kind.input_len_range();
            assert!(lo > 0 && hi > lo);
        }
        assert_eq!(ModelKind::CnnVggNet.input_len_range(), (0, 0));
    }

    #[test]
    fn every_model_builds_a_nonempty_acyclic_graph() {
        for kind in ALL_EVAL_MODELS.iter().chain([&ModelKind::ResNet50]) {
            let seq = SeqSpec::for_model(*kind, 20);
            let net = kind.build(1, seq);
            assert!(net.layer_count() > 3, "{kind} too small");
            assert!(net.topological_order().is_ok(), "{kind} has a cycle");
            assert!(net.total_macs() > 0, "{kind} has no compute");
        }
    }

    #[test]
    #[should_panic(expected = "batch size must be non-zero")]
    fn zero_batch_rejected() {
        let _ = ModelKind::CnnAlexNet.build(0, SeqSpec::none());
    }

    #[test]
    #[should_panic(expected = "non-zero sequence lengths")]
    fn rnn_requires_sequence_lengths() {
        let _ = ModelKind::RnnTranslation1.build(1, SeqSpec::none());
    }

    #[test]
    fn translation_models_differ_in_vocabulary() {
        let seq = SeqSpec::new(20, 20);
        let mt1 = ModelKind::RnnTranslation1.build(1, seq);
        let mt2 = ModelKind::RnnTranslation2.build(1, seq);
        assert!(mt2.total_weights() > mt1.total_weights());
    }

    #[test]
    fn known_mac_counts_are_in_the_right_ballpark() {
        // Published single-image MAC counts: AlexNet ~0.7 G, VGG-16 ~15.5 G,
        // GoogLeNet ~1.5 G, MobileNet ~0.57 G, ResNet-50 ~4 G.
        let gmacs = |kind: ModelKind| kind.build(1, SeqSpec::none()).total_macs() as f64 / 1e9;
        let an = gmacs(ModelKind::CnnAlexNet);
        assert!(an > 0.4 && an < 1.2, "AlexNet {an} GMACs");
        let vn = gmacs(ModelKind::CnnVggNet);
        assert!(vn > 12.0 && vn < 18.0, "VGG {vn} GMACs");
        let gn = gmacs(ModelKind::CnnGoogLeNet);
        assert!(gn > 0.8 && gn < 2.5, "GoogLeNet {gn} GMACs");
        let mn = gmacs(ModelKind::CnnMobileNet);
        assert!(mn > 0.3 && mn < 1.0, "MobileNet {mn} GMACs");
        let rn = gmacs(ModelKind::ResNet50);
        assert!(rn > 2.5 && rn < 5.5, "ResNet-50 {rn} GMACs");
    }
}
