//! Shared helpers for constructing model-zoo graphs.

use crate::graph::{NetworkGraph, NodeId};
use crate::layer::{ActivationKind, Layer, LayerKind, PoolKind, RecurrentKind};

/// Appends a ReLU-fused convolution after `from`.
#[allow(clippy::too_many_arguments)]
pub fn conv_relu(
    graph: &mut NetworkGraph,
    from: NodeId,
    name: &str,
    in_channels: u64,
    out_channels: u64,
    kernel: u64,
    stride: u64,
    padding: u64,
    input_hw: u64,
) -> NodeId {
    let layer = Layer::new(
        name,
        LayerKind::Conv {
            in_channels,
            out_channels,
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding: (padding, padding),
            input_hw: (input_hw, input_hw),
        },
    )
    .fused(ActivationKind::Relu);
    graph.add_layer_after(from, layer)
}

/// Appends a ReLU-fused depthwise convolution after `from`.
#[allow(clippy::too_many_arguments)]
pub fn depthwise_relu(
    graph: &mut NetworkGraph,
    from: NodeId,
    name: &str,
    channels: u64,
    kernel: u64,
    stride: u64,
    padding: u64,
    input_hw: u64,
) -> NodeId {
    let layer = Layer::new(
        name,
        LayerKind::DepthwiseConv {
            channels,
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding: (padding, padding),
            input_hw: (input_hw, input_hw),
        },
    )
    .fused(ActivationKind::Relu);
    graph.add_layer_after(from, layer)
}

/// Appends a pooling layer after `from`.
#[allow(clippy::too_many_arguments)]
pub fn pool(
    graph: &mut NetworkGraph,
    from: NodeId,
    name: &str,
    kind: PoolKind,
    window: u64,
    stride: u64,
    channels: u64,
    input_hw: u64,
) -> NodeId {
    let layer = Layer::new(
        name,
        LayerKind::Pool {
            kind,
            window: (window, window),
            stride: (stride, stride),
            channels,
            input_hw: (input_hw, input_hw),
        },
    );
    graph.add_layer_after(from, layer)
}

/// Appends a fully-connected layer after `from`, optionally fusing an
/// activation.
pub fn fully_connected(
    graph: &mut NetworkGraph,
    from: NodeId,
    name: &str,
    in_features: u64,
    out_features: u64,
    activation: Option<ActivationKind>,
) -> NodeId {
    let mut layer = Layer::new(
        name,
        LayerKind::FullyConnected {
            in_features,
            out_features,
        },
    );
    if let Some(act) = activation {
        layer = layer.fused(act);
    }
    graph.add_layer_after(from, layer)
}

/// Appends one time step of an LSTM layer after `from`.
pub fn lstm_step(
    graph: &mut NetworkGraph,
    from: NodeId,
    name: &str,
    input_size: u64,
    hidden_size: u64,
) -> NodeId {
    let layer = Layer::new(
        name,
        LayerKind::Recurrent {
            kind: RecurrentKind::Lstm,
            input_size,
            hidden_size,
        },
    );
    graph.add_layer_after(from, layer)
}

/// Appends an explicit element-wise layer (used for residual additions and
/// branch concatenations, which are cheap vector-unit copies/adds).
pub fn elementwise(
    graph: &mut NetworkGraph,
    from: NodeId,
    name: &str,
    kind: ActivationKind,
    elements_per_sample: u64,
) -> NodeId {
    let layer = Layer::new(
        name,
        LayerKind::Activation {
            kind,
            elements_per_sample,
        },
    );
    graph.add_layer_after(from, layer)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_chain_into_a_linear_graph() {
        let mut g = NetworkGraph::new("test");
        let input = g.add_layer(Layer::new(
            "stem",
            LayerKind::Conv {
                in_channels: 3,
                out_channels: 8,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                input_hw: (8, 8),
            },
        ));
        let c = conv_relu(&mut g, input, "c", 8, 16, 3, 1, 1, 8);
        let d = depthwise_relu(&mut g, c, "dw", 16, 3, 1, 1, 8);
        let p = pool(&mut g, d, "p", PoolKind::Max, 2, 2, 16, 8);
        let f = fully_connected(
            &mut g,
            p,
            "fc",
            16 * 4 * 4,
            10,
            Some(ActivationKind::Softmax),
        );
        let l = lstm_step(&mut g, f, "lstm", 10, 10);
        let _e = elementwise(&mut g, l, "add", ActivationKind::Relu, 10);
        assert_eq!(g.layer_count(), 7);
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.topological_order().unwrap().len(), 7);
    }
}
