//! CNN-GN: GoogLeNet / Inception v1 (Szegedy et al., 2015).
//!
//! A stem of three convolutions followed by nine inception modules in three
//! stages and a final classifier. Each inception module has four parallel
//! branches (1×1, 1×1→3×3, 1×1→5×5, pool→1×1) whose outputs are concatenated
//! channel-wise; the branch structure is preserved in the graph and joined by
//! an explicit (cheap) concatenation node. Roughly 1.5 GMACs and 7 M
//! parameters per 224×224 image.

use crate::graph::{NetworkGraph, NodeId};
use crate::layer::{ActivationKind, Layer, LayerKind, PoolKind};

use super::builders::{conv_relu, elementwise, fully_connected, pool};

/// Channel configuration of one inception module.
struct InceptionSpec {
    name: &'static str,
    in_channels: u64,
    branch1x1: u64,
    branch3x3_reduce: u64,
    branch3x3: u64,
    branch5x5_reduce: u64,
    branch5x5: u64,
    pool_proj: u64,
    spatial: u64,
}

impl InceptionSpec {
    fn output_channels(&self) -> u64 {
        self.branch1x1 + self.branch3x3 + self.branch5x5 + self.pool_proj
    }
}

/// Appends one inception module after `from`, returning the concat node and
/// the module's output channel count.
fn inception(graph: &mut NetworkGraph, from: NodeId, spec: &InceptionSpec) -> (NodeId, u64) {
    let s = spec.spatial;
    let name = spec.name;

    // Branch 1: 1x1 convolution.
    let b1 = conv_relu(
        graph,
        from,
        &format!("{name}_1x1"),
        spec.in_channels,
        spec.branch1x1,
        1,
        1,
        0,
        s,
    );

    // Branch 2: 1x1 reduce -> 3x3.
    let b2r = conv_relu(
        graph,
        from,
        &format!("{name}_3x3_reduce"),
        spec.in_channels,
        spec.branch3x3_reduce,
        1,
        1,
        0,
        s,
    );
    let b2 = conv_relu(
        graph,
        b2r,
        &format!("{name}_3x3"),
        spec.branch3x3_reduce,
        spec.branch3x3,
        3,
        1,
        1,
        s,
    );

    // Branch 3: 1x1 reduce -> 5x5.
    let b3r = conv_relu(
        graph,
        from,
        &format!("{name}_5x5_reduce"),
        spec.in_channels,
        spec.branch5x5_reduce,
        1,
        1,
        0,
        s,
    );
    let b3 = conv_relu(
        graph,
        b3r,
        &format!("{name}_5x5"),
        spec.branch5x5_reduce,
        spec.branch5x5,
        5,
        1,
        2,
        s,
    );

    // Branch 4: 3x3 max pool -> 1x1 projection.
    let b4p = pool(
        graph,
        from,
        &format!("{name}_pool"),
        PoolKind::Max,
        3,
        1,
        spec.in_channels,
        s,
    );
    // A 3x3/1 max pool without padding shrinks the map by 2; the original
    // network pads to keep it constant, so the projection sees `s` again.
    let b4 = conv_relu(
        graph,
        b4p,
        &format!("{name}_pool_proj"),
        spec.in_channels,
        spec.pool_proj,
        1,
        1,
        0,
        s,
    );

    // Channel-wise concatenation of the four branches: a cheap on-chip copy,
    // modelled as a single element-wise node joining the branch outputs.
    let out_channels = spec.output_channels();
    let concat = elementwise(
        graph,
        b1,
        &format!("{name}_concat"),
        ActivationKind::Relu,
        out_channels * s * s,
    );
    graph.add_edge(b2, concat).expect("branch 2 joins concat");
    graph.add_edge(b3, concat).expect("branch 3 joins concat");
    graph.add_edge(b4, concat).expect("branch 4 joins concat");

    (concat, out_channels)
}

/// Builds the GoogLeNet graph.
pub fn build() -> NetworkGraph {
    let mut g = NetworkGraph::new("googlenet");

    // Stem: 7x7/2 conv, pool, 1x1 conv, 3x3 conv, pool.
    let conv1 = g.add_layer(
        Layer::new(
            "conv1_7x7",
            LayerKind::Conv {
                in_channels: 3,
                out_channels: 64,
                kernel: (7, 7),
                stride: (2, 2),
                padding: (3, 3),
                input_hw: (224, 224),
            },
        )
        .fused(ActivationKind::Relu),
    );
    let pool1 = pool(&mut g, conv1, "pool1", PoolKind::Max, 3, 2, 64, 112);
    let conv2 = conv_relu(&mut g, pool1, "conv2_1x1", 64, 64, 1, 1, 0, 56);
    let conv3 = conv_relu(&mut g, conv2, "conv2_3x3", 64, 192, 3, 1, 1, 56);
    let pool2 = pool(&mut g, conv3, "pool2", PoolKind::Max, 3, 2, 192, 56);

    let specs_28 = [
        InceptionSpec {
            name: "inception_3a",
            in_channels: 192,
            branch1x1: 64,
            branch3x3_reduce: 96,
            branch3x3: 128,
            branch5x5_reduce: 16,
            branch5x5: 32,
            pool_proj: 32,
            spatial: 28,
        },
        InceptionSpec {
            name: "inception_3b",
            in_channels: 256,
            branch1x1: 128,
            branch3x3_reduce: 128,
            branch3x3: 192,
            branch5x5_reduce: 32,
            branch5x5: 96,
            pool_proj: 64,
            spatial: 28,
        },
    ];
    let mut node = pool2;
    let mut channels = 192;
    for spec in &specs_28 {
        let (concat, out) = inception(&mut g, node, spec);
        node = concat;
        channels = out;
    }
    let pool3 = pool(&mut g, node, "pool3", PoolKind::Max, 3, 2, channels, 28);

    let specs_14 = [
        InceptionSpec {
            name: "inception_4a",
            in_channels: 480,
            branch1x1: 192,
            branch3x3_reduce: 96,
            branch3x3: 208,
            branch5x5_reduce: 16,
            branch5x5: 48,
            pool_proj: 64,
            spatial: 14,
        },
        InceptionSpec {
            name: "inception_4b",
            in_channels: 512,
            branch1x1: 160,
            branch3x3_reduce: 112,
            branch3x3: 224,
            branch5x5_reduce: 24,
            branch5x5: 64,
            pool_proj: 64,
            spatial: 14,
        },
        InceptionSpec {
            name: "inception_4c",
            in_channels: 512,
            branch1x1: 128,
            branch3x3_reduce: 128,
            branch3x3: 256,
            branch5x5_reduce: 24,
            branch5x5: 64,
            pool_proj: 64,
            spatial: 14,
        },
        InceptionSpec {
            name: "inception_4d",
            in_channels: 512,
            branch1x1: 112,
            branch3x3_reduce: 144,
            branch3x3: 288,
            branch5x5_reduce: 32,
            branch5x5: 64,
            pool_proj: 64,
            spatial: 14,
        },
        InceptionSpec {
            name: "inception_4e",
            in_channels: 528,
            branch1x1: 256,
            branch3x3_reduce: 160,
            branch3x3: 320,
            branch5x5_reduce: 32,
            branch5x5: 128,
            pool_proj: 128,
            spatial: 14,
        },
    ];
    let mut node = pool3;
    for spec in &specs_14 {
        let (concat, out) = inception(&mut g, node, spec);
        node = concat;
        channels = out;
    }
    let pool4 = pool(&mut g, node, "pool4", PoolKind::Max, 3, 2, channels, 14);

    let specs_7 = [
        InceptionSpec {
            name: "inception_5a",
            in_channels: 832,
            branch1x1: 256,
            branch3x3_reduce: 160,
            branch3x3: 320,
            branch5x5_reduce: 32,
            branch5x5: 128,
            pool_proj: 128,
            spatial: 7,
        },
        InceptionSpec {
            name: "inception_5b",
            in_channels: 832,
            branch1x1: 384,
            branch3x3_reduce: 192,
            branch3x3: 384,
            branch5x5_reduce: 48,
            branch5x5: 128,
            pool_proj: 128,
            spatial: 7,
        },
    ];
    let mut node = pool4;
    for spec in &specs_7 {
        let (concat, out) = inception(&mut g, node, spec);
        node = concat;
        channels = out;
    }

    let avg_pool = pool(&mut g, node, "avg_pool", PoolKind::Avg, 7, 1, channels, 7);
    let _fc = fully_connected(
        &mut g,
        avg_pool,
        "fc",
        channels,
        1000,
        Some(ActivationKind::Softmax),
    );

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_nine_inception_modules() {
        let g = build();
        let concats = g
            .layers()
            .filter(|(_, l)| l.name().ends_with("_concat"))
            .count();
        assert_eq!(concats, 9);
    }

    #[test]
    fn graph_is_a_dag_with_branching() {
        let g = build();
        assert!(g.topological_order().is_ok());
        // Branching means more edges than a simple chain would have.
        assert!(g.edge_count() > g.layer_count());
    }

    #[test]
    fn parameter_count_matches_reference() {
        // GoogLeNet has ~7 M parameters (6.8 M in the torchvision variant).
        let params = build().total_weights();
        assert!(params > 5_500_000 && params < 8_500_000, "{params}");
    }

    #[test]
    fn mac_count_matches_reference() {
        // ~1.5 GMACs per image.
        let macs = build().total_macs();
        assert!(macs > 1_000_000_000 && macs < 2_200_000_000, "{macs}");
    }

    #[test]
    fn final_stage_produces_1024_channels() {
        let g = build();
        let fc = g.layers().find(|(_, l)| l.name() == "fc").unwrap().1;
        match fc.kind() {
            LayerKind::FullyConnected { in_features, .. } => assert_eq!(*in_features, 1024),
            other => panic!("unexpected classifier kind {other:?}"),
        }
    }
}
