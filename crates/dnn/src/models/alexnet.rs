//! CNN-AN: AlexNet (Krizhevsky et al., 2012).
//!
//! 5 convolution layers, 3 max-pooling layers, and 3 fully-connected layers
//! operating on 227×227 RGB inputs. Roughly 0.7 GMACs and 61 M parameters per
//! image.

use crate::graph::NetworkGraph;
use crate::layer::{ActivationKind, Layer, LayerKind, PoolKind};

use super::builders::{conv_relu, fully_connected, pool};

/// Builds the AlexNet graph.
pub fn build() -> NetworkGraph {
    let mut g = NetworkGraph::new("alexnet");

    let conv1 = g.add_layer(
        Layer::new(
            "conv1",
            LayerKind::Conv {
                in_channels: 3,
                out_channels: 96,
                kernel: (11, 11),
                stride: (4, 4),
                padding: (0, 0),
                input_hw: (227, 227),
            },
        )
        .fused(ActivationKind::Relu),
    );
    // 96 x 55 x 55 -> pool -> 96 x 27 x 27
    let pool1 = pool(&mut g, conv1, "pool1", PoolKind::Max, 3, 2, 96, 55);

    let conv2 = conv_relu(&mut g, pool1, "conv2", 96, 256, 5, 1, 2, 27);
    // 256 x 27 x 27 -> pool -> 256 x 13 x 13
    let pool2 = pool(&mut g, conv2, "pool2", PoolKind::Max, 3, 2, 256, 27);

    let conv3 = conv_relu(&mut g, pool2, "conv3", 256, 384, 3, 1, 1, 13);
    let conv4 = conv_relu(&mut g, conv3, "conv4", 384, 384, 3, 1, 1, 13);
    let conv5 = conv_relu(&mut g, conv4, "conv5", 384, 256, 3, 1, 1, 13);
    // 256 x 13 x 13 -> pool -> 256 x 6 x 6
    let pool5 = pool(&mut g, conv5, "pool5", PoolKind::Max, 3, 2, 256, 13);

    let fc6 = fully_connected(
        &mut g,
        pool5,
        "fc6",
        256 * 6 * 6,
        4096,
        Some(ActivationKind::Relu),
    );
    let fc7 = fully_connected(&mut g, fc6, "fc7", 4096, 4096, Some(ActivationKind::Relu));
    let _fc8 = fully_connected(
        &mut g,
        fc7,
        "fc8",
        4096,
        1000,
        Some(ActivationKind::Softmax),
    );

    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_inventory() {
        let g = build();
        // 5 conv + 3 pool + 3 fc = 11 layers.
        assert_eq!(g.layer_count(), 11);
        let conv_count = g
            .layers()
            .filter(|(_, l)| matches!(l.kind(), LayerKind::Conv { .. }))
            .count();
        assert_eq!(conv_count, 5);
    }

    #[test]
    fn parameter_count_matches_reference() {
        // AlexNet has ~61 M parameters (dominated by fc6's 37.7 M).
        let params = build().total_weights();
        assert!(params > 55_000_000 && params < 65_000_000, "{params}");
    }

    #[test]
    fn mac_count_matches_reference() {
        // ~0.7 GMACs per 227x227 image with the original grouped convolutions;
        // our ungrouped variant (as used by most frameworks today) is ~1.1 G.
        let macs = build().total_macs();
        assert!(macs > 500_000_000 && macs < 1_300_000_000, "{macs}");
    }

    #[test]
    fn spatial_dimensions_shrink_to_six() {
        let g = build();
        let pool5 = g
            .layers()
            .find(|(_, l)| l.name() == "pool5")
            .map(|(_, l)| l.output_hw().unwrap())
            .unwrap();
        assert_eq!(pool5, (6, 6));
    }
}
