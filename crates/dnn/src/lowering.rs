//! Lowering of the architecture-agnostic [`Layer`] IR onto the systolic-array
//! NPU's [`npu_sim::LayerWork`] description.
//!
//! This is the "compiler" step the paper assumes happens on the CPU before a
//! layer's instructions are pushed to the NPU instruction buffer: the layer's
//! shapes are turned into the GEMM that the weight-stationary array executes
//! plus the vector-unit work fused with it.

use npu_sim::isa::VectorOpKind;
use npu_sim::vector::VectorWork;
use npu_sim::{GemmShape, LayerWork};

use crate::layer::{ActivationKind, Layer, LayerKind, PoolKind};

impl From<ActivationKind> for VectorOpKind {
    fn from(kind: ActivationKind) -> Self {
        match kind {
            ActivationKind::Relu => VectorOpKind::Relu,
            ActivationKind::Sigmoid => VectorOpKind::Sigmoid,
            ActivationKind::Tanh => VectorOpKind::Tanh,
            ActivationKind::Softmax => VectorOpKind::Softmax,
        }
    }
}

/// Lowers `layer` at the given batch size into the work description consumed
/// by the NPU timing model.
///
/// ```
/// use dnn_models::layer::{Layer, LayerKind};
/// use dnn_models::lowering::lower_layer;
///
/// let fc = Layer::new("fc", LayerKind::FullyConnected { in_features: 1024, out_features: 1024 });
/// let work = lower_layer(&fc, 8);
/// assert_eq!(work.gemm.unwrap().m, 1024);
/// assert_eq!(work.gemm.unwrap().n, 8);
/// ```
pub fn lower_layer(layer: &Layer, batch: u64) -> LayerWork {
    assert!(batch > 0, "batch size must be non-zero");
    match layer.kind() {
        LayerKind::Conv { .. } | LayerKind::DepthwiseConv { .. } => {
            let dims = layer.gemm_dims(batch).expect("conv layers lower to GEMM");
            let shape = GemmShape::new(dims.m, dims.k, dims.n);
            let mut work = LayerWork::conv(shape, layer.output_bytes(batch));
            work.weight_bytes = layer.weight_bytes();
            work.input_bytes = layer.input_bytes(batch);
            if let Some(act) = layer.fused_activation() {
                work = work.with_fused_vector(act.into(), layer.output_elements(batch));
            }
            work
        }
        LayerKind::FullyConnected { .. } | LayerKind::Recurrent { .. } => {
            let dims = layer
                .gemm_dims(batch)
                .expect("FC/RECR layers lower to GEMM");
            let shape = GemmShape::new(dims.m, dims.k, dims.n);
            let mut work = LayerWork::gemm(shape, layer.output_bytes(batch));
            work.weight_bytes = layer.weight_bytes();
            work.input_bytes = layer.input_bytes(batch);
            if let Some(act) = layer.fused_activation() {
                work = work.with_fused_vector(act.into(), layer.output_elements(batch));
            }
            // Recurrent cells additionally run their gate non-linearities on
            // the vector unit even when no explicit activation was fused.
            if layer.fused_activation().is_none() {
                if let LayerKind::Recurrent { .. } = layer.kind() {
                    work = work.with_fused_vector(VectorOpKind::Tanh, layer.output_elements(batch));
                }
            }
            work
        }
        LayerKind::Activation { kind, .. } => LayerWork::vector_only(
            VectorWork::new((*kind).into(), layer.output_elements(batch)),
            layer.output_bytes(batch),
        ),
        LayerKind::Pool { kind, window, .. } => {
            let op = match kind {
                PoolKind::Max => VectorOpKind::MaxPool,
                PoolKind::Avg => VectorOpKind::AvgPool,
            };
            // Each output element reduces a window of inputs on the vector unit.
            let processed = layer.output_elements(batch) * window.0 * window.1;
            LayerWork::vector_only(VectorWork::new(op, processed), layer.output_bytes(batch))
        }
    }
}

/// Lowers every layer of a graph in execution order.
pub fn lower_graph(graph: &crate::NetworkGraph, batch: u64) -> Vec<LayerWork> {
    graph
        .execution_order()
        .into_iter()
        .map(|layer| lower_layer(layer, batch))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::RecurrentKind;
    use crate::NetworkGraph;

    #[test]
    fn conv_lowers_to_conv_work() {
        let conv = Layer::new(
            "c",
            LayerKind::Conv {
                in_channels: 64,
                out_channels: 128,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                input_hw: (28, 28),
            },
        )
        .fused(ActivationKind::Relu);
        let work = lower_layer(&conv, 2);
        assert!(work.is_conv);
        let g = work.gemm.unwrap();
        assert_eq!(g.m, 128);
        assert_eq!(g.k, 64 * 9);
        assert_eq!(g.n, 2 * 28 * 28);
        assert!(work.vector.is_some());
        assert_eq!(work.weight_bytes, conv.weight_bytes());
        assert!(!work.in_place);
    }

    #[test]
    fn pooling_lowers_to_vector_only_in_place_work() {
        let pool = Layer::new(
            "p",
            LayerKind::Pool {
                kind: PoolKind::Max,
                window: (2, 2),
                stride: (2, 2),
                channels: 64,
                input_hw: (56, 56),
            },
        );
        let work = lower_layer(&pool, 1);
        assert!(work.gemm.is_none());
        assert!(work.in_place);
        let v = work.vector.unwrap();
        assert_eq!(v.kind, VectorOpKind::MaxPool);
        assert_eq!(v.elements, 64 * 28 * 28 * 4);
    }

    #[test]
    fn recurrent_layer_gets_gate_nonlinearity() {
        let lstm = Layer::new(
            "l",
            LayerKind::Recurrent {
                kind: RecurrentKind::Lstm,
                input_size: 512,
                hidden_size: 512,
            },
        );
        let work = lower_layer(&lstm, 1);
        assert!(!work.is_conv);
        assert_eq!(work.gemm.unwrap().m, 2048);
        assert_eq!(work.vector.unwrap().kind, VectorOpKind::Tanh);
    }

    #[test]
    fn activation_kind_conversion_is_total() {
        for (kind, expected) in [
            (ActivationKind::Relu, VectorOpKind::Relu),
            (ActivationKind::Sigmoid, VectorOpKind::Sigmoid),
            (ActivationKind::Tanh, VectorOpKind::Tanh),
            (ActivationKind::Softmax, VectorOpKind::Softmax),
        ] {
            assert_eq!(VectorOpKind::from(kind), expected);
        }
    }

    #[test]
    fn lower_graph_preserves_layer_count() {
        let mut g = NetworkGraph::new("g");
        let a = g.add_layer(Layer::new(
            "fc1",
            LayerKind::FullyConnected {
                in_features: 10,
                out_features: 20,
            },
        ));
        g.add_layer_after(
            a,
            Layer::new(
                "relu",
                LayerKind::Activation {
                    kind: ActivationKind::Relu,
                    elements_per_sample: 20,
                },
            ),
        );
        let works = lower_graph(&g, 4);
        assert_eq!(works.len(), 2);
        assert!(works[0].gemm.is_some());
        assert!(works[1].gemm.is_none());
    }

    #[test]
    #[should_panic(expected = "batch size must be non-zero")]
    fn zero_batch_rejected() {
        let fc = Layer::new(
            "fc",
            LayerKind::FullyConnected {
                in_features: 1,
                out_features: 1,
            },
        );
        let _ = lower_layer(&fc, 0);
    }
}
