//! Property tests for the tracing layer's two contracts:
//!
//! * **Observe, never perturb** — attaching any sink to the engine or the
//!   closed-loop cluster produces an outcome bit-identical to the untraced
//!   run. The emission sites are guarded by a compile-time `ENABLED` flag
//!   and sinks only receive copies, so this must hold for *every* workload;
//!   the tests drive randomized campaigns over policies, arrival processes,
//!   fault schedules and migration settings.
//! * **The stream tells the truth** — the recorded events must agree with
//!   the outcome's own books: `Complete` events match the task records,
//!   `QuantumSkip` totals match the engine's skip counters, and the
//!   cluster's `Recovery` / `MigrationOut` event sequences reproduce
//!   `recovery_log` / `migration_log` entry for entry, in order, with
//!   matching timestamps. Per-node streams must be causally ordered
//!   (non-decreasing timestamps).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prema::cluster::{
    ClusterFaultPlan, ClusterTraceEvent, FaultTraceKind, FlightEntry, MigrationConfig,
    OnlineClusterConfig, OnlineClusterSimulator, OnlineDispatchPolicy, OnlineOutcome,
    RecoveryConfig, VecClusterSink,
};
use prema::models::ALL_EVAL_MODELS;
use prema::scheduler::trace::{TraceEvent, VecSink};
use prema::workload::prepare::prepare_requests;
use prema::workload::{
    generate_open_loop, ArrivalProcess, FaultProcess, FaultSchedule, OpenLoopConfig,
};
use prema::{
    Cycles, NpuConfig, NpuSimulator, PolicyKind, PreemptionMode, PreparedTask, Priority,
    SchedulerConfig, SeqSpec, TaskId, TaskRequest,
};

/// Attaching a [`VecSink`] to the single-node engine never changes the
/// outcome, the recorded stream is causally ordered, `Complete` events
/// biject onto the task records, and the `QuantumSkip` events sum to
/// exactly the engine's own skip counters.
#[test]
fn engine_traced_runs_are_bit_identical_and_events_reconcile() {
    let cfg = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0x7AC3_0001);
    let mut skips_seen = 0u64;
    for case in 0..10 {
        let policy = PolicyKind::ALL[rng.gen_range(0usize..PolicyKind::ALL.len())];
        let mode = match rng.gen_range(0u32..3) {
            0 => PreemptionMode::NonPreemptive,
            1 => PreemptionMode::Dynamic,
            _ => PreemptionMode::DynamicKill,
        };
        let task_count = rng.gen_range(2usize..6);
        let requests: Vec<TaskRequest> = (0..task_count)
            .map(|i| {
                let model = ALL_EVAL_MODELS[rng.gen_range(0usize..ALL_EVAL_MODELS.len())];
                TaskRequest::new(TaskId(i as u64), model)
                    .with_priority(Priority::ALL[rng.gen_range(0usize..3)])
                    .with_arrival(Cycles::new(rng.gen_range(0u64..20_000_000)))
                    .with_seq(SeqSpec::for_model(model, 10))
            })
            .collect();
        let sim = NpuSimulator::new(cfg.clone(), SchedulerConfig::named(policy, mode));
        let prepared = sim.prepare(&requests);
        let untraced = sim.run(&prepared);
        let (traced, sink) = sim.run_traced(&prepared, VecSink::default());
        let context = format!("case {case} {policy:?}/{mode:?}");
        assert_eq!(traced, untraced, "{context}: tracing perturbed the run");
        // `SimOutcome`'s equality deliberately ignores the observability
        // counters; pin them separately.
        assert_eq!(traced.quanta_skipped, untraced.quanta_skipped, "{context}");
        assert_eq!(
            traced.replayed_token_grants, untraced.replayed_token_grants,
            "{context}"
        );

        let mut prev = Cycles::ZERO;
        for (at, _) in &sink.events {
            assert!(*at >= prev, "{context}: stream went backwards in time");
            prev = *at;
        }

        let mut completed: Vec<TaskId> = sink
            .events
            .iter()
            .filter_map(|(_, event)| match event {
                TraceEvent::Complete { task } => Some(*task),
                _ => None,
            })
            .collect();
        completed.sort_unstable();
        let mut recorded: Vec<TaskId> = untraced.records.iter().map(|r| r.id).collect();
        recorded.sort_unstable();
        assert_eq!(completed, recorded, "{context}: Complete events != records");

        let (quanta, grants) =
            sink.events
                .iter()
                .fold((0u64, 0u64), |(q, g), (_, event)| match event {
                    TraceEvent::QuantumSkip { quanta, grants, .. } => (q + quanta, g + grants),
                    _ => (q, g),
                });
        assert_eq!(quanta, traced.quanta_skipped, "{context}");
        assert_eq!(grants, traced.replayed_token_grants, "{context}");
        skips_seen += quanta;
    }
    assert!(
        skips_seen > 0,
        "the random cases must exercise the event-horizon fast path"
    );
}

/// One random closed-loop driving for the cluster tracing properties.
struct ClusterDriving {
    tasks: Vec<PreparedTask>,
    simulator: OnlineClusterSimulator,
}

fn draw_cluster_driving(rng: &mut StdRng, npu: &NpuConfig) -> Option<ClusterDriving> {
    let nodes = rng.gen_range(2usize..=4);
    let duration_ms = rng.gen_range(15.0..30.0);
    let process = match rng.gen_range(0u8..2) {
        0 => ArrivalProcess::Poisson {
            rate_per_ms: rng.gen_range(0.3..0.8),
        },
        _ => ArrivalProcess::Bursty {
            on_rate_per_ms: rng.gen_range(0.6..1.6),
            mean_on_ms: rng.gen_range(1.0..4.0),
            mean_off_ms: rng.gen_range(1.0..4.0),
        },
    };
    let arrivals = OpenLoopConfig::poisson(1.0, duration_ms).with_process(process);
    let spec = generate_open_loop(&arrivals, rng);
    if spec.is_empty() {
        return None;
    }
    let tasks = prepare_requests(&spec.requests, npu, None);

    // Fault only the first half of the nodes so migrations have healthy
    // destinations to win on; stragglers (slow degrades) dominate the mix
    // so the migration arbiter actually fires.
    let faulted = (nodes / 2).max(1);
    let mut schedule = FaultSchedule::none();
    for _ in 0..16 {
        schedule = FaultProcess::crashes(faulted, rng.gen_range(8.0..25.0), 10.0, duration_ms)
            .with_freeze_fraction(0.1)
            .with_degradation(0.6, 1, rng.gen_range(4u32..=8))
            .generate(rng);
        if !schedule.is_empty() {
            break;
        }
    }
    let dispatch = match rng.gen_range(0u8..3) {
        0 => OnlineDispatchPolicy::ShortestQueue,
        1 => OnlineDispatchPolicy::LeastWork,
        _ => OnlineDispatchPolicy::Predictive,
    };
    let mut config = OnlineClusterConfig::new(nodes, SchedulerConfig::paper_default(), dispatch)
        .with_faults(ClusterFaultPlan::new(schedule).with_recovery(RecoveryConfig::checkpointed()))
        .with_migration(MigrationConfig::new(rng.gen_range(4.0..12.0)));
    if rng.gen_bool(0.5) {
        config = config.with_work_stealing();
    }
    Some(ClusterDriving {
        tasks,
        simulator: OnlineClusterSimulator::new(config),
    })
}

/// Checks that the cluster-level event stream reproduces the outcome's own
/// recovery and migration logs entry for entry.
fn assert_stream_matches_logs(outcome: &OnlineOutcome, sink: &VecClusterSink, context: &str) {
    // Per-node causal order: each node's engine events and each node's
    // fault windows are non-decreasing in time.
    let nodes = outcome.cluster.node_outcomes.len();
    let mut node_clock = vec![Cycles::ZERO; nodes];
    for entry in &sink.entries {
        if let FlightEntry::Node { node, now, .. } = entry {
            assert!(
                *now >= node_clock[*node],
                "{context}: node {node} stream went backwards in time"
            );
            node_clock[*node] = *now;
        }
    }
    // Cluster-level events are emitted while the loop processes its global
    // event sequence, so they are globally ordered.
    let mut prev = Cycles::ZERO;
    for entry in &sink.entries {
        if let FlightEntry::Cluster { now, .. } = entry {
            assert!(
                *now >= prev,
                "{context}: cluster stream went backwards in time"
            );
            prev = *now;
        }
    }

    // Recovery events == recovery_log, in order, timestamps included.
    let recoveries: Vec<(Cycles, TaskId, usize, usize, u32)> = sink
        .entries
        .iter()
        .filter_map(|entry| match entry {
            FlightEntry::Cluster {
                now,
                event:
                    ClusterTraceEvent::Recovery {
                        task,
                        from,
                        to,
                        attempt,
                    },
            } => Some((*now, *task, *from, *to, *attempt)),
            _ => None,
        })
        .collect();
    let logged: Vec<(Cycles, TaskId, usize, usize, u32)> = outcome
        .recovery_log
        .iter()
        .map(|r| (r.at, r.task, r.from_node, r.to_node, r.attempt))
        .collect();
    assert_eq!(recoveries, logged, "{context}: Recovery events != log");

    // MigrationOut events == migration_log, in order; every MigrationLand
    // pairs with a logged hop whose arrival instant it fires at.
    let outs: Vec<(Cycles, TaskId, usize, usize, u64, Cycles)> = sink
        .entries
        .iter()
        .filter_map(|entry| match entry {
            FlightEntry::Cluster {
                now,
                event:
                    ClusterTraceEvent::MigrationOut {
                        task,
                        from,
                        to,
                        bytes,
                        arrive_at,
                        ..
                    },
            } => Some((*now, *task, *from, *to, *bytes, *arrive_at)),
            _ => None,
        })
        .collect();
    let logged: Vec<(Cycles, TaskId, usize, usize, u64, Cycles)> = outcome
        .migration_log
        .iter()
        .map(|r| (r.at, r.task, r.from_node, r.to_node, r.bytes, r.arrive_at))
        .collect();
    assert_eq!(outs, logged, "{context}: MigrationOut events != log");
    for entry in &sink.entries {
        if let FlightEntry::Cluster {
            now,
            event: ClusterTraceEvent::MigrationLand { task, node },
        } = entry
        {
            assert!(
                outcome
                    .migration_log
                    .iter()
                    .any(|r| r.task == *task && r.to_node == *node && r.arrive_at == *now),
                "{context}: MigrationLand without a matching logged hop"
            );
        }
    }

    // Fault windows: one event per fired window of each kind.
    let mut crashes = 0u64;
    let mut freezes = 0u64;
    let mut degrades = 0u64;
    for entry in &sink.entries {
        if let FlightEntry::Cluster {
            event: ClusterTraceEvent::Fault { kind, .. },
            ..
        } = entry
        {
            match kind {
                FaultTraceKind::Crash => crashes += 1,
                FaultTraceKind::Freeze => freezes += 1,
                FaultTraceKind::Degrade { .. } => degrades += 1,
                FaultTraceKind::DegradeEnd => {}
            }
        }
    }
    assert_eq!(crashes, outcome.crashes, "{context}: crash events != tally");
    assert_eq!(
        freezes, outcome.freezes,
        "{context}: freeze events != tally"
    );
    assert_eq!(
        degrades, outcome.degrades,
        "{context}: degrade events != tally"
    );

    // Steal and shed events match the outcome's counters too.
    let steals = sink
        .entries
        .iter()
        .filter(|entry| {
            matches!(
                entry,
                FlightEntry::Cluster {
                    event: ClusterTraceEvent::Steal { .. },
                    ..
                }
            )
        })
        .count() as u64;
    assert_eq!(steals, outcome.steals, "{context}: steal events != tally");
    let sheds = sink
        .entries
        .iter()
        .filter(|entry| {
            matches!(
                entry,
                FlightEntry::Cluster {
                    event: ClusterTraceEvent::Shed { .. },
                    ..
                }
            )
        })
        .count();
    assert_eq!(sheds, outcome.shed.len(), "{context}: shed events != tally");
}

/// Random closed-loop drivings with faults, recoveries and migrations: the
/// traced event-heap run and the traced stepping reference are both
/// bit-identical to their untraced counterparts, and both event streams
/// reproduce the outcome's recovery/migration logs in order.
#[test]
fn cluster_tracing_never_perturbs_and_streams_match_the_logs() {
    let npu = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0x7AC3_0002);
    let mut cases = 0usize;
    let mut recoveries_seen = 0u64;
    let mut migrations_seen = 0u64;
    for case in 0..8 {
        let Some(driving) = draw_cluster_driving(&mut rng, &npu) else {
            continue;
        };
        let context = format!("case {case}");
        let untraced = driving.simulator.run(&driving.tasks);
        let (traced, sink) = driving
            .simulator
            .run_traced(&driving.tasks, VecClusterSink::default());
        assert_eq!(
            traced, untraced,
            "{context}: tracing perturbed the heap loop"
        );
        assert_stream_matches_logs(&traced, &sink, &context);

        let reference = driving.simulator.run_reference(&driving.tasks);
        let (traced_reference, reference_sink) = driving
            .simulator
            .run_reference_traced(&driving.tasks, VecClusterSink::default());
        assert_eq!(
            traced_reference, reference,
            "{context}: tracing perturbed the reference loop"
        );
        assert_eq!(reference, untraced, "{context}: heap != reference");
        assert_stream_matches_logs(&traced_reference, &reference_sink, &context);

        cases += 1;
        recoveries_seen += traced.recoveries;
        migrations_seen += traced.migrations;
    }
    assert!(cases >= 6, "enough non-empty drivings ran");
    assert!(
        recoveries_seen > 0,
        "the campaign must exercise crash recovery"
    );
    assert!(
        migrations_seen > 0,
        "the campaign must exercise checkpoint migration"
    );
}
