//! Property test pinning the indexed contender structures to the linear
//! branch-and-bound scan they replace.
//!
//! The event-heap loop's live dispatch (`jsq-live`, `least-work-live`,
//! `predictive-live`) consults an indexed contender structure — depth
//! buckets or a tournament tree over absolute keys — whenever the run is
//! *lazy* (no stealing / admission / migration): plain drivings and
//! faults-only drivings. This sweep drives random cluster shapes through
//! every feature combination and asserts the outcome is exactly what the
//! linear scan produces:
//!
//! * **Heap == reference, bit for bit** — the indexed event-heap run must
//!   equal the horizon-stepping reference (which knows nothing about the
//!   index), outcome struct *and* `online_outcome_hash`. Any divergence in
//!   a single dispatch decision cascades into different node assignments
//!   and a different digest, so hash equality pins every pick.
//! * **Chosen-node identity per arrival** — debug builds (which `cargo
//!   test` uses) additionally replay the linear branch-and-bound scan
//!   after every indexed pick inside `pick_node_inner` and
//!   `debug_assert_eq!` the chosen node, so a compensating double-error
//!   cannot hide behind an identical final hash.
//! * **Synchronized modes stay untouched** — with stealing, admission or
//!   migration enabled the loop steps all nodes in lockstep and the index
//!   is never built; those drivings pin that the refactor did not perturb
//!   the synchronized path.
//!
//! Fault drivings matter most here: they exercise the penalty tiers
//! (down > cooling > healthy) as the index's major key, the promotion
//! heap that decays tiers at fault-drain instants, and the unindexed side
//! set that stalled and clock-scaled nodes divert to.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prema::cluster::{
    online_outcome_hash, ClusterFaultPlan, MigrationConfig, OnlineClusterConfig,
    OnlineClusterSimulator, OnlineDispatchPolicy,
};
use prema::workload::prepare::prepare_requests;
use prema::workload::{
    generate_open_loop, ArrivalProcess, FaultProcess, FaultSchedule, OpenLoopConfig,
};
use prema::{NpuConfig, SchedulerConfig};

/// Which subsystems a driving switches on. `Plain` and `Faults` leave the
/// loop lazy, so the indexed pick path handles every dispatch; the rest
/// force the synchronized stepping path where the index is never built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Features {
    Plain,
    Faults,
    Stealing,
    Admission,
    Migration,
    AllOn,
}

const FEATURES: [Features; 6] = [
    Features::Plain,
    Features::Faults,
    Features::Stealing,
    Features::Admission,
    Features::Migration,
    Features::AllOn,
];

const POLICIES: [OnlineDispatchPolicy; 3] = [
    OnlineDispatchPolicy::ShortestQueue,
    OnlineDispatchPolicy::LeastWork,
    OnlineDispatchPolicy::Predictive,
];

fn uses_index(features: Features) -> bool {
    matches!(features, Features::Plain | Features::Faults)
}

fn wants_faults(features: Features) -> bool {
    matches!(features, Features::Faults | Features::AllOn)
}

fn draw_config(
    rng: &mut StdRng,
    policy: OnlineDispatchPolicy,
    features: Features,
    nodes: usize,
    schedule: FaultSchedule,
) -> OnlineClusterConfig {
    let scheduler = if rng.gen_bool(0.3) {
        SchedulerConfig::np_fcfs()
    } else {
        SchedulerConfig::paper_default()
    };
    let mut config = OnlineClusterConfig::new(nodes, scheduler, policy);
    if wants_faults(features) {
        config = config.with_faults(ClusterFaultPlan::new(schedule));
    }
    match features {
        Features::Stealing => config = config.with_work_stealing(),
        Features::Admission => config = config.with_admission(rng.gen_range(20.0..80.0)),
        Features::Migration => {
            config = config.with_migration(MigrationConfig::new(rng.gen_range(2.0..20.0)))
        }
        Features::AllOn => {
            config = config
                .with_work_stealing()
                .with_admission(rng.gen_range(20.0..80.0))
                .with_migration(MigrationConfig::new(rng.gen_range(2.0..20.0)));
        }
        Features::Plain | Features::Faults => {}
    }
    config
}

/// The sweep: every live policy × every feature combination, several
/// random drivings each, heap vs reference pinned exactly. In debug
/// builds the in-loop linear replay additionally asserts per-arrival
/// chosen-node identity on every indexed pick.
#[test]
fn indexed_dispatch_matches_the_linear_scan_exactly() {
    let npu = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0x1D3_C0DE);
    let mut indexed_drivings = 0usize;
    let mut indexed_faulty = 0usize;
    for features in FEATURES {
        for policy in POLICIES {
            for case in 0..3 {
                let nodes = rng.gen_range(2usize..=5);
                let duration_ms = rng.gen_range(10.0..20.0);
                let rate_per_ms = rng.gen_range(0.3..0.9);
                let process = match rng.gen_range(0u8..3) {
                    0 => ArrivalProcess::Poisson { rate_per_ms },
                    1 => ArrivalProcess::Bursty {
                        on_rate_per_ms: rate_per_ms * 2.0,
                        mean_on_ms: rng.gen_range(1.0..4.0),
                        mean_off_ms: rng.gen_range(1.0..4.0),
                    },
                    _ => ArrivalProcess::Diurnal {
                        trough_rate_per_ms: rate_per_ms * 0.5,
                        peak_rate_per_ms: rate_per_ms * 1.5,
                        period_ms: rng.gen_range(6.0..18.0),
                    },
                };
                let arrivals = OpenLoopConfig::poisson(1.0, duration_ms).with_process(process);
                let spec = generate_open_loop(&arrivals, &mut rng);
                let tasks = prepare_requests(&spec.requests, &npu, None);
                if tasks.is_empty() {
                    continue;
                }

                // Fault drivings resample until the process fires so the
                // penalty tiers, promotion heap and side set actually see
                // traffic instead of an empty schedule.
                let mut schedule = FaultSchedule::none();
                if wants_faults(features) {
                    for _ in 0..32 {
                        schedule = FaultProcess::crashes(
                            nodes,
                            rng.gen_range(4.0..20.0),
                            rng.gen_range(0.5..2.0),
                            duration_ms,
                        )
                        .with_freeze_fraction(rng.gen_range(0.0..0.4))
                        .with_degradation(rng.gen_range(0.0..0.5), 1, rng.gen_range(2u32..=8))
                        .generate(&mut rng);
                        if !schedule.is_empty() {
                            break;
                        }
                    }
                    assert!(
                        !schedule.is_empty(),
                        "{features:?}/{policy:?} case {case}: fault process never fired"
                    );
                }

                let config = draw_config(&mut rng, policy, features, nodes, schedule);
                let simulator = OnlineClusterSimulator::new(config);
                let heap = simulator.run(&tasks);
                let reference = simulator.run_reference(&tasks);
                assert_eq!(
                    heap, reference,
                    "{features:?}/{policy:?} case {case}: indexed heap run != reference"
                );
                assert_eq!(
                    online_outcome_hash(&heap),
                    online_outcome_hash(&reference),
                    "{features:?}/{policy:?} case {case}: digest divergence"
                );
                if uses_index(features) {
                    indexed_drivings += 1;
                    if heap.has_fault_activity() {
                        indexed_faulty += 1;
                    }
                }
            }
        }
    }
    // The sweep must actually have exercised the indexed path, including
    // under live fault windows (penalty tiers + unindexed side set).
    assert!(
        indexed_drivings >= 12,
        "only {indexed_drivings} drivings ran with the contender index live"
    );
    assert!(
        indexed_faulty >= 4,
        "only {indexed_faulty} indexed drivings saw fault activity; penalty tiers untested"
    );
}
