//! Determinism regression tests for the simulation fast path.
//!
//! The engine's incremental scheduler state, the flat plan arena, the
//! event-horizon fast-forward, the sharded plan-compilation cache (and its
//! warm pass) and the rayon-parallel evaluation suite are all pure
//! optimizations: none of them may change a single bit of any
//! [`prema::SimOutcome`]. These tests pin that contract by replaying
//! identical seeds through the optimized and reference paths and asserting
//! full structural equality.

use rand::rngs::StdRng;
use rand::SeedableRng;

use prema::{
    NpuConfig, NpuSimulator, PolicyKind, PreemptionMechanism, PreemptionMode, SchedulerConfig,
    SimOutcome,
};
use prema_bench::suite::{run_grid, run_grid_reference, SuiteOptions};
use prema_workload::generator::{generate_workload, WorkloadConfig};
use prema_workload::prepare::{prepare_workload, prepare_workload_uncached};

/// Every (policy, preemption mode) combination the paper evaluates.
/// Static(KILL) + round-robin livelocks by construction (each task keeps
/// discarding the other's progress every quantum), so it is excluded here
/// exactly as it is excluded from the paper's evaluation.
fn all_scheduler_configs() -> Vec<SchedulerConfig> {
    let mut configs = Vec::new();
    for policy in PolicyKind::ALL {
        for preemption in [
            PreemptionMode::NonPreemptive,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            PreemptionMode::Static(PreemptionMechanism::Kill),
            PreemptionMode::Dynamic,
            PreemptionMode::DynamicKill,
        ] {
            if policy == PolicyKind::RoundRobin
                && preemption == PreemptionMode::Static(PreemptionMechanism::Kill)
            {
                continue;
            }
            configs.push(SchedulerConfig::named(policy, preemption));
        }
    }
    configs
}

/// The plan-cached preparation path must produce bit-identical outcomes to
/// fresh per-task compilation, for every policy and preemption mode.
#[test]
fn cached_plans_match_uncached_plans_across_all_configs() {
    let npu = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0xDE7);
    let spec = generate_workload(
        &WorkloadConfig {
            task_count: 5,
            ..WorkloadConfig::paper_default()
        },
        &mut rng,
    );
    let cached = prepare_workload(&spec, &npu, None);
    let uncached = prepare_workload_uncached(&spec, &npu, None);
    assert_eq!(cached.len(), uncached.len());
    for (a, b) in cached.tasks.iter().zip(&uncached.tasks) {
        assert_eq!(a.request, b.request);
        assert_eq!(*a.plan, *b.plan, "cached plan must equal fresh compile");
    }

    for cfg in all_scheduler_configs() {
        let label = cfg.label();
        let sim = NpuSimulator::new(npu.clone(), cfg);
        let from_cached: SimOutcome = sim.run(&cached.tasks);
        let from_uncached: SimOutcome = sim.run(&uncached.tasks);
        assert_eq!(from_cached, from_uncached, "outcome diverged under {label}");
    }
}

/// The event-horizon fast-forward must be bit-identical to waking the
/// scheduler at every expired quantum, for every policy and preemption mode
/// — per-task records, makespan, preemption counters *and* the
/// scheduler-invocation count (skipped quanta are credited, not dropped).
#[test]
fn fast_forwarded_records_match_stepped_records_across_all_configs() {
    let npu = NpuConfig::paper_default();
    for seed in [0xFF01u64, 2020, 7] {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = generate_workload(
            &WorkloadConfig {
                task_count: 6,
                ..WorkloadConfig::paper_default()
            },
            &mut rng,
        );
        let prepared = prepare_workload(&spec, &npu, None);
        for cfg in all_scheduler_configs() {
            let label = cfg.label();
            let sim = NpuSimulator::new(npu.clone(), cfg);
            let fast: SimOutcome = sim.run(&prepared.tasks);
            let stepped: SimOutcome = sim.run_reference(&prepared.tasks);
            assert_eq!(
                fast, stepped,
                "fast-forwarded outcome diverged from step-every-quantum under {label} (seed {seed:#x})"
            );
        }
    }
}

/// The parallel (run × config) suite must be bit-identical to the serial,
/// uncached reference sweep: same per-run seeds, same outcomes, for every
/// policy and preemption mode in one grid.
#[test]
fn parallel_cached_suite_matches_serial_uncached_reference() {
    let opts = SuiteOptions {
        runs: 2,
        seed: 2020,
        workload: WorkloadConfig {
            task_count: 5,
            ..WorkloadConfig::paper_default()
        },
        ..SuiteOptions::paper()
    };
    let configs = all_scheduler_configs();

    // Optimized path: parallel fan-out + plan cache (the default).
    let fast = run_grid(&configs, &opts);

    // Reference path: single-threaded, plans compiled from scratch per run.
    let reference: Vec<SimOutcome> = run_grid_reference(&configs, &opts);

    assert_eq!(fast.len(), reference.len());
    for (i, (a, b)) in fast.iter().zip(&reference).enumerate() {
        let cfg = &configs[i % configs.len()];
        assert_eq!(
            a,
            b,
            "grid cell {} (run {}, {}) diverged between parallel+cached and serial+uncached",
            i,
            i / configs.len(),
            cfg.label()
        );
    }
}

/// Re-running the parallel suite gives the same bits (no ordering or
/// scheduling nondeterminism leaks into the results).
#[test]
fn parallel_suite_is_reproducible_across_invocations() {
    let opts = SuiteOptions {
        runs: 3,
        seed: 7,
        workload: WorkloadConfig {
            task_count: 4,
            ..WorkloadConfig::paper_default()
        },
        ..SuiteOptions::paper()
    };
    let configs = vec![
        SchedulerConfig::np_fcfs(),
        SchedulerConfig::named(PolicyKind::Prema, PreemptionMode::Dynamic),
        SchedulerConfig::named(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
        ),
    ];
    let first = run_grid(&configs, &opts);
    let second = run_grid(&configs, &opts);
    assert_eq!(first, second);
}
