//! Determinism regression tests for the simulation fast path.
//!
//! The engine's incremental scheduler state, the flat plan arena, the
//! event-horizon fast-forward, the sharded plan-compilation cache (and its
//! warm pass) and the rayon-parallel evaluation suite are all pure
//! optimizations: none of them may change a single bit of any
//! [`prema::SimOutcome`]. These tests pin that contract by replaying
//! identical seeds through the optimized and reference paths and asserting
//! full structural equality.

use rand::rngs::StdRng;
use rand::SeedableRng;

use prema::cluster::{
    online_outcome_hash, outcome_hash, ClusterConfig, ClusterSimulator, DispatchPolicy,
    OnlineClusterConfig, OnlineClusterSimulator, OnlineDispatchPolicy,
};
use prema::{
    NpuConfig, NpuSimulator, PolicyKind, PreemptionMechanism, PreemptionMode, SchedulerConfig,
    SimOutcome,
};
use prema_bench::cluster::{run_cluster_sweep, sweep_hash, ClosedLoopVariant, ClusterSweepOptions};
use prema_bench::suite::{run_grid, run_grid_reference, SuiteOptions};
use prema_workload::arrivals::{generate_open_loop, ArrivalProcess, OpenLoopConfig};
use prema_workload::generator::{generate_workload, WorkloadConfig};
use prema_workload::prepare::{prepare_workload, prepare_workload_uncached};

/// Every (policy, preemption mode) combination the paper evaluates.
/// Static(KILL) + round-robin livelocks by construction (each task keeps
/// discarding the other's progress every quantum), so it is excluded here
/// exactly as it is excluded from the paper's evaluation.
fn all_scheduler_configs() -> Vec<SchedulerConfig> {
    let mut configs = Vec::new();
    for policy in PolicyKind::ALL {
        for preemption in [
            PreemptionMode::NonPreemptive,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            PreemptionMode::Static(PreemptionMechanism::Kill),
            PreemptionMode::Dynamic,
            PreemptionMode::DynamicKill,
        ] {
            if policy == PolicyKind::RoundRobin
                && preemption == PreemptionMode::Static(PreemptionMechanism::Kill)
            {
                continue;
            }
            configs.push(SchedulerConfig::named(policy, preemption));
        }
    }
    configs
}

/// The plan-cached preparation path must produce bit-identical outcomes to
/// fresh per-task compilation, for every policy and preemption mode.
#[test]
fn cached_plans_match_uncached_plans_across_all_configs() {
    let npu = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0xDE7);
    let spec = generate_workload(
        &WorkloadConfig {
            task_count: 5,
            ..WorkloadConfig::paper_default()
        },
        &mut rng,
    );
    let cached = prepare_workload(&spec, &npu, None);
    let uncached = prepare_workload_uncached(&spec, &npu, None);
    assert_eq!(cached.len(), uncached.len());
    for (a, b) in cached.tasks.iter().zip(&uncached.tasks) {
        assert_eq!(a.request, b.request);
        assert_eq!(*a.plan, *b.plan, "cached plan must equal fresh compile");
    }

    for cfg in all_scheduler_configs() {
        let label = cfg.label();
        let sim = NpuSimulator::new(npu.clone(), cfg);
        let from_cached: SimOutcome = sim.run(&cached.tasks);
        let from_uncached: SimOutcome = sim.run(&uncached.tasks);
        assert_eq!(from_cached, from_uncached, "outcome diverged under {label}");
    }
}

/// The event-horizon fast-forward must be bit-identical to waking the
/// scheduler at every expired quantum, for every policy and preemption mode
/// — per-task records, makespan, preemption counters *and* the
/// scheduler-invocation count (skipped quanta are credited, not dropped).
#[test]
fn fast_forwarded_records_match_stepped_records_across_all_configs() {
    let npu = NpuConfig::paper_default();
    for seed in [0xFF01u64, 2020, 7] {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = generate_workload(
            &WorkloadConfig {
                task_count: 6,
                ..WorkloadConfig::paper_default()
            },
            &mut rng,
        );
        let prepared = prepare_workload(&spec, &npu, None);
        for cfg in all_scheduler_configs() {
            let label = cfg.label();
            let sim = NpuSimulator::new(npu.clone(), cfg);
            let fast: SimOutcome = sim.run(&prepared.tasks);
            let stepped: SimOutcome = sim.run_reference(&prepared.tasks);
            assert_eq!(
                fast, stepped,
                "fast-forwarded outcome diverged from step-every-quantum under {label} (seed {seed:#x})"
            );
        }
    }
}

/// The parallel (run × config) suite must be bit-identical to the serial,
/// uncached reference sweep: same per-run seeds, same outcomes, for every
/// policy and preemption mode in one grid.
#[test]
fn parallel_cached_suite_matches_serial_uncached_reference() {
    let opts = SuiteOptions {
        runs: 2,
        seed: 2020,
        workload: WorkloadConfig {
            task_count: 5,
            ..WorkloadConfig::paper_default()
        },
        ..SuiteOptions::paper()
    };
    let configs = all_scheduler_configs();

    // Optimized path: parallel fan-out + plan cache (the default).
    let fast = run_grid(&configs, &opts);

    // Reference path: single-threaded, plans compiled from scratch per run.
    let reference: Vec<SimOutcome> = run_grid_reference(&configs, &opts);

    assert_eq!(fast.len(), reference.len());
    for (i, (a, b)) in fast.iter().zip(&reference).enumerate() {
        let cfg = &configs[i % configs.len()];
        assert_eq!(
            a,
            b,
            "grid cell {} (run {}, {}) diverged between parallel+cached and serial+uncached",
            i,
            i / configs.len(),
            cfg.label()
        );
    }
}

/// The cluster serving layer is deterministic per seed for every dispatch
/// policy and arrival process: the same seed produces a bit-identical
/// [`prema::cluster::ClusterOutcome`] whether the per-node simulations run
/// serially or fanned out over rayon, and across repeated invocations.
#[test]
fn cluster_runs_are_bit_identical_across_fanout_and_invocations() {
    let npu = NpuConfig::paper_default();
    for process in [
        ArrivalProcess::Poisson { rate_per_ms: 0.3 },
        ArrivalProcess::Bursty {
            on_rate_per_ms: 1.2,
            mean_on_ms: 10.0,
            mean_off_ms: 30.0,
        },
        ArrivalProcess::Diurnal {
            trough_rate_per_ms: 0.05,
            peak_rate_per_ms: 0.6,
            period_ms: 60.0,
        },
    ] {
        let config = OpenLoopConfig::poisson(1.0, 60.0).with_process(process);
        let mut rng = StdRng::seed_from_u64(0xC1D5);
        let spec = generate_open_loop(&config, &mut rng);
        let prepared = prepare_workload(&spec, &npu, None);
        for dispatch in DispatchPolicy::ALL {
            let make = |parallel: bool| {
                let mut cluster_cfg =
                    ClusterConfig::new(4, SchedulerConfig::paper_default(), dispatch)
                        .with_dispatch_seed(0xC1D5);
                cluster_cfg.parallel = parallel;
                ClusterSimulator::new(cluster_cfg).run(&prepared.tasks)
            };
            let parallel = make(true);
            let serial = make(false);
            let repeat = make(true);
            assert_eq!(
                parallel, serial,
                "cluster outcome diverged between parallel and serial node fan-out \
                 under {dispatch} / {process:?}"
            );
            assert_eq!(
                parallel, repeat,
                "cluster outcome not reproducible across invocations under {dispatch}"
            );
            assert_eq!(outcome_hash(&parallel), outcome_hash(&serial));
        }
    }
}

/// The closed-loop (online) cluster path is deterministic end to end: the
/// same prepared workload produces a bit-identical `OnlineOutcome` —
/// served records, final assignments (steals included), shed list, steal
/// count and digest — for every dispatch signal and closed-loop mechanism,
/// across arrival processes. There is no RNG anywhere on the path, so two
/// invocations must agree exactly.
#[test]
fn online_cluster_runs_are_bit_identical_across_invocations() {
    let npu = NpuConfig::paper_default();
    for process in [
        ArrivalProcess::Poisson { rate_per_ms: 0.3 },
        ArrivalProcess::Bursty {
            on_rate_per_ms: 1.2,
            mean_on_ms: 10.0,
            mean_off_ms: 30.0,
        },
    ] {
        let config = OpenLoopConfig::poisson(1.0, 60.0).with_process(process);
        let mut rng = StdRng::seed_from_u64(0x0A11E);
        let spec = generate_open_loop(&config, &mut rng);
        let prepared = prepare_workload(&spec, &npu, None);
        let variants: [(&str, OnlineClusterConfig); 5] = [
            (
                "jsq-live",
                OnlineClusterConfig::new(
                    3,
                    SchedulerConfig::paper_default(),
                    OnlineDispatchPolicy::ShortestQueue,
                ),
            ),
            (
                "least-work-live",
                OnlineClusterConfig::new(
                    3,
                    SchedulerConfig::paper_default(),
                    OnlineDispatchPolicy::LeastWork,
                ),
            ),
            (
                "predictive-live",
                OnlineClusterConfig::new(
                    3,
                    SchedulerConfig::paper_default(),
                    OnlineDispatchPolicy::Predictive,
                ),
            ),
            (
                "work-steal",
                OnlineClusterConfig::new(
                    3,
                    SchedulerConfig::paper_default(),
                    OnlineDispatchPolicy::Predictive,
                )
                .with_work_stealing(),
            ),
            (
                "sla-admit",
                OnlineClusterConfig::new(
                    3,
                    SchedulerConfig::paper_default(),
                    OnlineDispatchPolicy::Predictive,
                )
                .with_admission(150.0),
            ),
        ];
        for (label, config) in variants {
            let first = OnlineClusterSimulator::new(config.clone()).run(&prepared.tasks);
            let second = OnlineClusterSimulator::new(config).run(&prepared.tasks);
            assert_eq!(
                first, second,
                "online outcome not reproducible under {label} / {process:?}"
            );
            assert_eq!(online_outcome_hash(&first), online_outcome_hash(&second));
            // Conservation: served + shed partition the generated requests.
            assert_eq!(
                first.served() + first.shed.len(),
                spec.len(),
                "{label} / {process:?}"
            );
        }
    }
}

/// The full (load x policy) cluster sweep — the `throughput cluster`
/// baseline surface, now spanning both the open- and closed-loop dispatch
/// paths — is reproducible: identical cells and an identical sweep digest
/// across invocations, and a different digest for a different seed.
#[test]
fn cluster_sweep_digest_is_reproducible_per_seed() {
    let opts = ClusterSweepOptions {
        duration_ms: 60.0,
        loads: vec![0.5, 0.9],
        policies: vec![DispatchPolicy::Random, DispatchPolicy::Predictive],
        closed: vec![
            ClosedLoopVariant::Predictive,
            ClosedLoopVariant::WorkStealing,
            ClosedLoopVariant::SlaAdmission,
        ],
        ..ClusterSweepOptions::baseline()
    };
    let first = run_cluster_sweep(&opts);
    let second = run_cluster_sweep(&opts);
    assert_eq!(sweep_hash(&first), sweep_hash(&second));
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.hash, b.hash);
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.events, b.events);
    }
    let reseeded = run_cluster_sweep(&ClusterSweepOptions {
        seed: opts.seed + 1,
        ..opts
    });
    assert_ne!(sweep_hash(&first), sweep_hash(&reseeded));
}

/// The cluster-scale sweep — the `throughput cluster-scale` baseline
/// surface — is reproducible: identical cell digests and sweep hash across
/// invocations (each cell already asserts event-heap == reference
/// internally), and a different digest for a different seed. Runs under
/// the CI determinism matrix, so the digest is also pinned across
/// RAYON_NUM_THREADS settings.
#[test]
fn cluster_scale_sweep_digest_is_reproducible_per_seed() {
    use prema_bench::scale::{run_scale_sweep, scale_sweep_hash, ScaleSweepOptions};

    let opts = ScaleSweepOptions::quick();
    let first = run_scale_sweep(&opts);
    let second = run_scale_sweep(&opts);
    assert_eq!(scale_sweep_hash(&first), scale_sweep_hash(&second));
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.hash, b.hash);
        assert_eq!(a.events, b.events);
        assert_eq!(a.served, b.served);
        assert_eq!(a.steals, b.steals);
    }
    let reseeded = run_scale_sweep(&ScaleSweepOptions {
        seed: opts.seed + 1,
        ..opts
    });
    assert_ne!(scale_sweep_hash(&first), scale_sweep_hash(&reseeded));
}

/// Re-running the parallel suite gives the same bits (no ordering or
/// scheduling nondeterminism leaks into the results).
#[test]
fn parallel_suite_is_reproducible_across_invocations() {
    let opts = SuiteOptions {
        runs: 3,
        seed: 7,
        workload: WorkloadConfig {
            task_count: 4,
            ..WorkloadConfig::paper_default()
        },
        ..SuiteOptions::paper()
    };
    let configs = vec![
        SchedulerConfig::np_fcfs(),
        SchedulerConfig::named(PolicyKind::Prema, PreemptionMode::Dynamic),
        SchedulerConfig::named(
            PolicyKind::Hpf,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
        ),
    ];
    let first = run_grid(&configs, &opts);
    let second = run_grid(&configs, &opts);
    assert_eq!(first, second);
}
