//! End-to-end integration tests spanning the whole workspace: workload
//! generation → predictor → preemptible-NPU engine → metrics. These check the
//! *shape* of the paper's headline claims rather than absolute numbers.

use rand::rngs::StdRng;
use rand::SeedableRng;

use prema::metrics::sla::violation_rate;
use prema::metrics::MultiTaskMetrics;
use prema::npu::Cycles;
use prema::workload::generator::{generate_workload, WorkloadConfig};
use prema::workload::prepare::{outcomes_of, prepare_workload};
use prema::{
    AnalyticalPredictor, ModelKind, NpuConfig, NpuSimulator, PolicyKind, PreemptionMechanism,
    PreemptionMode, Priority, SchedulerConfig, TaskId, TaskRequest,
};

fn npu() -> NpuConfig {
    NpuConfig::paper_default()
}

fn run_policy(
    cfg: SchedulerConfig,
    prepared: &[prema::PreparedTask],
) -> (prema::SimOutcome, MultiTaskMetrics) {
    let outcome = NpuSimulator::new(npu(), cfg).run(prepared);
    let metrics = MultiTaskMetrics::from_outcomes(&outcomes_of(&outcome.records));
    (outcome, metrics)
}

fn paper_workload(seed: u64) -> Vec<prema::PreparedTask> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = generate_workload(&WorkloadConfig::paper_default(), &mut rng);
    let predictor = AnalyticalPredictor::new(npu());
    prepare_workload(&spec, &npu(), Some(&predictor)).tasks
}

#[test]
fn prema_beats_np_fcfs_on_antt_and_fairness_across_seeds() {
    let mut antt_wins = 0;
    let mut fairness_wins = 0;
    let seeds = [1u64, 2, 3, 4, 5];
    for &seed in &seeds {
        let prepared = paper_workload(seed);
        let (_, baseline) = run_policy(SchedulerConfig::np_fcfs(), &prepared);
        let (_, prema) = run_policy(SchedulerConfig::paper_default(), &prepared);
        if prema.antt <= baseline.antt {
            antt_wins += 1;
        }
        if prema.fairness >= baseline.fairness {
            fairness_wins += 1;
        }
    }
    assert!(
        antt_wins >= 4,
        "PREMA better ANTT on only {antt_wins}/5 seeds"
    );
    assert!(
        fairness_wins >= 4,
        "PREMA better fairness on only {fairness_wins}/5 seeds"
    );
}

#[test]
fn preemptive_prema_reduces_sla_violations_versus_np_fcfs() {
    let mut baseline_rates = Vec::new();
    let mut prema_rates = Vec::new();
    for seed in 10..14u64 {
        let prepared = paper_workload(seed);
        let (base_outcome, _) = run_policy(SchedulerConfig::np_fcfs(), &prepared);
        let (prema_outcome, _) = run_policy(SchedulerConfig::paper_default(), &prepared);
        baseline_rates.push(violation_rate(&outcomes_of(&base_outcome.records), 4.0));
        prema_rates.push(violation_rate(&outcomes_of(&prema_outcome.records), 4.0));
    }
    let baseline_avg: f64 = baseline_rates.iter().sum::<f64>() / baseline_rates.len() as f64;
    let prema_avg: f64 = prema_rates.iter().sum::<f64>() / prema_rates.len() as f64;
    assert!(
        prema_avg <= baseline_avg,
        "PREMA SLA violation rate {prema_avg} should not exceed NP-FCFS {baseline_avg}"
    );
}

#[test]
fn sjf_is_latency_optimal_but_prema_stays_close() {
    // Figure 11/12: SJF has the best ANTT; PREMA reaches most of it while
    // remaining priority-aware.
    let mut sjf_antt = 0.0;
    let mut prema_antt = 0.0;
    let mut fcfs_antt = 0.0;
    let seeds = [21u64, 22, 23];
    for &seed in &seeds {
        let prepared = paper_workload(seed);
        let (_, sjf) = run_policy(
            SchedulerConfig::named(PolicyKind::Sjf, PreemptionMode::Dynamic),
            &prepared,
        );
        let (_, prema) = run_policy(SchedulerConfig::paper_default(), &prepared);
        let (_, fcfs) = run_policy(SchedulerConfig::np_fcfs(), &prepared);
        sjf_antt += sjf.antt;
        prema_antt += prema.antt;
        fcfs_antt += fcfs.antt;
    }
    assert!(
        sjf_antt <= prema_antt * 1.05,
        "SJF should be (near) latency optimal"
    );
    assert!(prema_antt < fcfs_antt, "PREMA should beat NP-FCFS on ANTT");
    // PREMA keeps a large share of SJF's ANTT advantage (the paper reports
    // 92% in the non-preemptive setting; PREMA additionally honours priority
    // and token constraints, so we only require the same order of magnitude).
    let prema_gain = fcfs_antt / prema_antt;
    let sjf_gain = fcfs_antt / sjf_antt;
    assert!(
        prema_gain >= 0.25 * sjf_gain,
        "PREMA gain {prema_gain:.2} too far behind SJF gain {sjf_gain:.2}"
    );
}

#[test]
fn high_priority_tail_latency_ordering_matches_figure_14() {
    // For a high-priority GoogLeNet request competing with heavy background
    // work: Isolated <= PREMA < NP-FCFS.
    let npu = npu();
    let requests = vec![
        TaskRequest::new(TaskId(0), ModelKind::CnnVggNet)
            .with_batch(4)
            .with_priority(Priority::Low),
        TaskRequest::new(TaskId(1), ModelKind::RnnTranslation1).with_priority(Priority::Low),
        TaskRequest::new(TaskId(2), ModelKind::CnnGoogLeNet)
            .with_priority(Priority::High)
            .with_arrival(npu.millis_to_cycles(1.0)),
    ];
    let predictor = AnalyticalPredictor::new(npu.clone());
    let prepared = prema::workload::prepare::prepare_requests(&requests, &npu, Some(&predictor));

    let isolated_ms = npu.cycles_to_millis(
        prepared
            .iter()
            .find(|t| t.request.id == TaskId(2))
            .unwrap()
            .isolated_cycles(),
    );
    let (base_outcome, _) = run_policy(SchedulerConfig::np_fcfs(), &prepared);
    let (prema_outcome, _) = run_policy(SchedulerConfig::paper_default(), &prepared);

    let base_ms = npu.cycles_to_millis(base_outcome.record(TaskId(2)).unwrap().turnaround());
    let prema_ms = npu.cycles_to_millis(prema_outcome.record(TaskId(2)).unwrap().turnaround());

    assert!(prema_ms >= isolated_ms * 0.99);
    assert!(
        prema_ms < base_ms,
        "PREMA high-priority latency {prema_ms:.2} ms should beat NP-FCFS {base_ms:.2} ms"
    );
    // The paper reports PREMA staying within ~1.4-1.6x of isolated while
    // NP-FCFS blows up by an order of magnitude on loaded servers; on this
    // 3-task scenario we only require a clear separation.
    assert!(base_ms / isolated_ms > prema_ms / isolated_ms);
}

#[test]
fn checkpoint_dominates_kill_on_throughput() {
    // Figure 15 / Section IV-E: CHECKPOINT achieves higher STP than KILL
    // while providing comparable latency benefits.
    let mut checkpoint_stp = 0.0;
    let mut kill_stp = 0.0;
    for seed in 31..34u64 {
        let prepared = paper_workload(seed);
        let (_, ckpt) = run_policy(
            SchedulerConfig::named(
                PolicyKind::Prema,
                PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            ),
            &prepared,
        );
        let (_, kill) = run_policy(
            SchedulerConfig::named(
                PolicyKind::Prema,
                PreemptionMode::Static(PreemptionMechanism::Kill),
            ),
            &prepared,
        );
        checkpoint_stp += ckpt.stp;
        kill_stp += kill.stp;
    }
    assert!(
        checkpoint_stp >= kill_stp,
        "CHECKPOINT STP {checkpoint_stp:.2} should be at least KILL STP {kill_stp:.2}"
    );
}

#[test]
fn every_policy_preserves_work_conservation_invariants() {
    let prepared = paper_workload(77);
    for policy in PolicyKind::ALL {
        for mode in [PreemptionMode::NonPreemptive, PreemptionMode::Dynamic] {
            let cfg = SchedulerConfig::named(policy, mode);
            let label = cfg.label();
            let outcome = NpuSimulator::new(npu(), cfg).run(&prepared);
            assert_eq!(outcome.records.len(), prepared.len(), "{label}");
            for record in &outcome.records {
                assert!(record.completion > record.arrival, "{label}");
                assert!(record.first_start >= record.arrival, "{label}");
                assert!(
                    record.turnaround() >= record.isolated_cycles,
                    "{label}: turnaround below isolated time"
                );
                assert!(record.ntt() >= 0.999, "{label}");
            }
            // The NPU can't finish all tasks faster than the longest one runs
            // in isolation.
            let max_isolated = outcome
                .records
                .iter()
                .map(|r| r.isolated_cycles)
                .max()
                .unwrap();
            assert!(outcome.makespan >= max_isolated, "{label}");
            assert!(outcome.makespan > Cycles::ZERO, "{label}");
        }
    }
}

#[test]
fn predictor_estimates_track_isolated_times_across_the_zoo() {
    let predictor = AnalyticalPredictor::new(npu());
    let mut rng = StdRng::seed_from_u64(5);
    let spec = generate_workload(
        &WorkloadConfig {
            task_count: 16,
            ..WorkloadConfig::paper_default()
        },
        &mut rng,
    );
    let prepared = prepare_workload(&spec, &npu(), Some(&predictor));
    let error = prepared.mean_estimation_error();
    assert!(
        error < 0.3,
        "mean estimation error {error} too large for scheduling purposes"
    );
}
