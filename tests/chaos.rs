//! Chaos-testing harness for the fault-tolerant closed-loop cluster.
//!
//! Each driving samples a random cluster shape (node count, scheduler,
//! dispatch policy, stealing/admission/migration toggles), a random arrival
//! process and a random fault schedule (crash/freeze/degrade mix, MTBF,
//! downtime, straggler speed — plus link-fault windows: per-directed-link
//! outage/throttle chains or a clean two-group partition, and an optional
//! transfer-custody layer with a random retry budget), then asserts the
//! invariants that must survive *any* fault pattern:
//!
//! * **Exactly-once conservation** — served, shed and abandoned requests
//!   partition the generated ids; no task is lost or double-served across
//!   crash/salvage/re-dispatch hops, checkpoint migrations, *or* custody
//!   redirects — and custody reconciliation is clean (no task left in
//!   flight at end of run).
//! * **Bit-identical repeats** — running the same driving twice produces
//!   the same outcome, byte for byte.
//! * **Heap == reference** — the event-heap loop and the horizon-stepping
//!   reference loop agree exactly, faults and migrations included, pinned
//!   through [`online_outcome_hash`].
//! * **Byte accounting** — the interconnect tally equals the sum of the
//!   per-migration checkpoint payloads in the log.
//!
//! The sweep size defaults to 56 drivings; set the `CHAOS_ITERS`
//! environment variable to run a longer (or shorter) campaign. Every
//! event-heap run rides with a bounded `FlightRecorder`; when any invariant
//! fails, its last events and per-node samples are dumped so the failure
//! report carries the lead-up, and the traced-vs-untraced comparison pins
//! the recorder's observe-never-perturb contract on every driving.
//!
//! A separate deterministic scenario exercises multi-hop salvage: a task
//! crashes on its first node, recovers onto a second, crashes *there* too,
//! and still completes — with a monotonically advancing checkpoint cursor.
//! A second deterministic scenario walks the custody state machine's worst
//! day: destination crashes mid-flight, the redirect is severed by a link
//! drop, and the backoff retry finally lands — exactly one record.

use std::panic::AssertUnwindSafe;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prema::cluster::{
    online_outcome_hash, ClusterFaultPlan, CustodyConfig, FlightRecorder, MigrationConfig,
    OnlineClusterConfig, OnlineClusterSimulator, OnlineDispatchPolicy, RecoveryConfig,
};
use prema::workload::prepare::prepare_requests;
use prema::workload::{
    generate_open_loop, ArrivalProcess, FaultKind, FaultProcess, FaultSchedule, LinkFault,
    LinkFaultKind, LinkFaultProcess, NodeFault, OpenLoopConfig,
};
use prema::{Cycles, ModelKind, NpuConfig, PreparedTask, SchedulerConfig, TaskId, TaskRequest};

/// One random driving: everything the chaos loop varies, drawn up-front so
/// failures print a self-contained reproduction.
#[derive(Debug)]
struct Driving {
    nodes: usize,
    duration_ms: f64,
    process: ArrivalProcess,
    fcfs: bool,
    dispatch: OnlineDispatchPolicy,
    stealing: bool,
    admission: Option<f64>,
    mtbf_ms: f64,
    downtime_ms: f64,
    freeze_fraction: f64,
    degrade_fraction: f64,
    degrade_speed: (u32, u32),
    migration: Option<MigrationConfig>,
    recovery: RecoveryConfig,
    links: LinkPlan,
    custody: Option<CustodyConfig>,
}

/// How a driving faults the interconnect: not at all, a per-directed-link
/// renewal chain of outage/throttle windows, or one clean partition of the
/// node set.
#[derive(Debug)]
enum LinkPlan {
    None,
    Process {
        mtbf_ms: f64,
        outage_ms: f64,
        degraded_fraction: f64,
        bandwidth_den: u32,
    },
    Partition {
        split: usize,
        start_ms: f64,
        end_ms: f64,
    },
}

fn draw_driving(rng: &mut StdRng) -> Driving {
    let nodes = rng.gen_range(2usize..=4);
    let duration_ms = rng.gen_range(12.0..24.0);
    let rate_per_ms = rng.gen_range(0.3..0.9);
    let process = match rng.gen_range(0u8..3) {
        0 => ArrivalProcess::Poisson { rate_per_ms },
        1 => ArrivalProcess::Bursty {
            on_rate_per_ms: rate_per_ms * 2.0,
            mean_on_ms: rng.gen_range(1.0..4.0),
            mean_off_ms: rng.gen_range(1.0..4.0),
        },
        _ => ArrivalProcess::Diurnal {
            trough_rate_per_ms: rate_per_ms * 0.5,
            peak_rate_per_ms: rate_per_ms * 1.5,
            period_ms: rng.gen_range(6.0..18.0),
        },
    };
    let dispatch = match rng.gen_range(0u8..3) {
        0 => OnlineDispatchPolicy::ShortestQueue,
        1 => OnlineDispatchPolicy::LeastWork,
        _ => OnlineDispatchPolicy::Predictive,
    };
    let mut recovery = if rng.gen_bool(0.5) {
        RecoveryConfig::checkpointed()
    } else {
        RecoveryConfig::restart_from_zero()
    };
    recovery.retry_budget = rng.gen_range(0u32..=4);
    recovery.backoff_base_ms = rng.gen_range(0.25..1.0);
    Driving {
        nodes,
        duration_ms,
        process,
        fcfs: rng.gen_bool(0.3),
        dispatch,
        stealing: rng.gen_bool(0.4),
        admission: if rng.gen_bool(0.3) {
            Some(rng.gen_range(20.0..80.0))
        } else {
            None
        },
        mtbf_ms: rng.gen_range(5.0..40.0),
        downtime_ms: rng.gen_range(0.5..2.0),
        freeze_fraction: rng.gen_range(0.0..0.4),
        degrade_fraction: rng.gen_range(0.0..0.5),
        degrade_speed: (1, rng.gen_range(2u32..=8)),
        migration: if rng.gen_bool(0.5) {
            Some(
                MigrationConfig::new(rng.gen_range(2.0..20.0))
                    .with_hysteresis(rng.gen_range(1.0..1.5)),
            )
        } else {
            None
        },
        recovery,
        links: match rng.gen_range(0u8..3) {
            0 => LinkPlan::None,
            1 => LinkPlan::Process {
                mtbf_ms: rng.gen_range(3.0..20.0),
                outage_ms: rng.gen_range(1.0..8.0),
                degraded_fraction: rng.gen_range(0.0..0.9),
                bandwidth_den: rng.gen_range(4u32..=64),
            },
            _ => {
                let split = rng.gen_range(1..nodes);
                let start_ms = rng.gen_range(0.5..duration_ms * 0.5);
                LinkPlan::Partition {
                    split,
                    start_ms,
                    end_ms: start_ms + rng.gen_range(1.0..duration_ms * 0.5),
                }
            }
        },
        custody: if rng.gen_bool(0.6) {
            let mut custody = CustodyConfig::redirect().with_timeout_ms(rng.gen_range(0.2..4.0));
            custody.recovery.retry_budget = rng.gen_range(0u32..=4);
            custody.recovery.backoff_base_ms = rng.gen_range(0.25..1.0);
            Some(custody)
        } else {
            None
        },
    }
}

/// Samples the driving's link-fault windows (empty for [`LinkPlan::None`]).
fn draw_links(driving: &Driving, npu: &NpuConfig, rng: &mut StdRng) -> Vec<LinkFault> {
    match driving.links {
        LinkPlan::None => Vec::new(),
        LinkPlan::Process {
            mtbf_ms,
            outage_ms,
            degraded_fraction,
            bandwidth_den,
        } => LinkFaultProcess::outages(driving.nodes, mtbf_ms, outage_ms, driving.duration_ms)
            .with_degraded(degraded_fraction, 1, bandwidth_den)
            .generate(rng),
        LinkPlan::Partition {
            split,
            start_ms,
            end_ms,
        } => {
            let all: Vec<usize> = (0..driving.nodes).collect();
            let (left, right) = all.split_at(split);
            LinkFault::partition(
                left,
                right,
                npu.millis_to_cycles(start_ms),
                npu.millis_to_cycles(end_ms),
            )
        }
    }
}

fn config_of(driving: &Driving, schedule: FaultSchedule) -> OnlineClusterConfig {
    let scheduler = if driving.fcfs {
        SchedulerConfig::np_fcfs()
    } else {
        SchedulerConfig::paper_default()
    };
    let mut config = OnlineClusterConfig::new(driving.nodes, scheduler, driving.dispatch)
        .with_faults(ClusterFaultPlan::new(schedule).with_recovery(driving.recovery));
    if driving.stealing {
        config = config.with_work_stealing();
    }
    if let Some(target) = driving.admission {
        config = config.with_admission(target);
    }
    if let Some(migration) = &driving.migration {
        let mut migration = migration.clone();
        if let Some(custody) = driving.custody {
            migration = migration.with_custody(custody);
        }
        config = config.with_migration(migration);
    }
    config
}

/// The chaos sweep: ≥50 random fault drivings (default; scale with
/// `CHAOS_ITERS`), every invariant checked on each one.
#[test]
fn random_fault_drivings_conserve_tasks_and_stay_deterministic() {
    let drivings: usize = std::env::var("CHAOS_ITERS")
        .ok()
        .and_then(|value| value.parse().ok())
        .unwrap_or(56);
    let npu = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0xC4A0_5EED);
    let mut faulty = 0usize;
    let mut migrated = 0usize;
    for case in 0..drivings {
        let driving = draw_driving(&mut rng);
        let arrivals =
            OpenLoopConfig::poisson(1.0, driving.duration_ms).with_process(driving.process);
        let spec = generate_open_loop(&arrivals, &mut rng);
        let tasks = prepare_requests(&spec.requests, &npu, None);
        if tasks.is_empty() {
            continue;
        }
        // Resample until the fault process actually fires: the acceptance
        // criterion counts *fault* drivings, not quiet ones.
        let mut schedule = FaultSchedule::none();
        for _ in 0..32 {
            schedule = FaultProcess::crashes(
                driving.nodes,
                driving.mtbf_ms,
                driving.downtime_ms,
                driving.duration_ms,
            )
            .with_freeze_fraction(driving.freeze_fraction)
            .with_degradation(
                driving.degrade_fraction,
                driving.degrade_speed.0,
                driving.degrade_speed.1,
            )
            .generate(&mut rng);
            if !schedule.is_empty() {
                break;
            }
        }
        assert!(
            !schedule.is_empty(),
            "case {case}: fault process never fired"
        );
        let scheduled = schedule.len() as u64;
        let schedule = schedule.with_links(draw_links(&driving, &npu, &mut rng));
        let simulator = OnlineClusterSimulator::new(config_of(&driving, schedule));

        // The heap run carries a bounded flight recorder: the last 512
        // events plus 64 samples per node, dumped below if any invariant
        // fails so the failure report carries the lead-up, not just the
        // final state. Comparing this traced run against the untraced
        // reference and repeat also pins observe-never-perturb on every
        // random driving.
        let recorder = FlightRecorder::new(driving.nodes, 512, 64);
        let (heap, recorder) = simulator.run_traced(&tasks, recorder);
        let invariants = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let reference = simulator.run_reference(&tasks);
            assert_eq!(
                heap, reference,
                "case {case}: heap != reference\n{driving:?}"
            );
            assert_eq!(
                online_outcome_hash(&heap),
                online_outcome_hash(&reference),
                "case {case}: digest divergence\n{driving:?}"
            );
            let repeat = simulator.run(&tasks);
            assert_eq!(
                heap, repeat,
                "case {case}: traced run not bit-identical to untraced repeat\n{driving:?}"
            );

            // Exactly-once conservation: served ∪ shed ∪ abandoned ==
            // generated.
            let mut all: Vec<TaskId> = heap
                .cluster
                .merged_records()
                .iter()
                .map(|r| r.id)
                .chain(heap.shed.iter().map(|r| r.id))
                .chain(heap.abandoned.iter().map(|r| r.id))
                .collect();
            all.sort_unstable();
            let before = all.len();
            all.dedup();
            assert_eq!(
                before,
                all.len(),
                "case {case}: a task was double-served\n{driving:?}"
            );
            let mut expected: Vec<TaskId> = tasks.iter().map(|t| t.request.id).collect();
            expected.sort_unstable();
            assert_eq!(
                all, expected,
                "case {case}: conservation broken\n{driving:?}"
            );

            assert_eq!(
                heap.crashes + heap.freezes + heap.degrades,
                scheduled,
                "case {case}: not every scheduled fault window fired\n{driving:?}"
            );

            // Interconnect byte accounting: the tally is exactly the sum of
            // the live checkpoint payloads the log says travelled.
            assert_eq!(
                heap.migration_bytes,
                heap.migration_log.iter().map(|r| r.bytes).sum::<u64>(),
                "case {case}: migration byte tally diverges from the log\n{driving:?}"
            );
            assert_eq!(
                heap.migrations as usize,
                heap.migration_log.len(),
                "case {case}: migration count diverges from the log\n{driving:?}"
            );
            if driving.migration.is_none() {
                assert_eq!(
                    heap.migrations, 0,
                    "case {case}: migration fired without a policy\n{driving:?}"
                );
            }

            // Custody invariants: reconciliation is clean (no task left in
            // flight), the redirect tally matches its log, and without a
            // custody layer the fabric is reliable — link faults must never
            // fail a transfer.
            assert!(
                heap.custody_error.is_none(),
                "case {case}: custody reconciliation failed: {:?}\n{driving:?}",
                heap.custody_error
            );
            assert_eq!(
                heap.redirects as usize,
                heap.redirect_log.len(),
                "case {case}: redirect count diverges from the log\n{driving:?}"
            );
            if driving.custody.is_none() || driving.migration.is_none() {
                assert_eq!(
                    (heap.transfer_failures, heap.redirects),
                    (0, 0),
                    "case {case}: custody machinery fired without a custody layer\n{driving:?}"
                );
            }
        }));
        if let Err(failure) = invariants {
            let dump = recorder.dump();
            eprintln!("{dump}");
            // Nightly CI sets CHAOS_DUMP_DIR and uploads whatever lands
            // there as a failure artifact, so the flight-recorder lead-up
            // survives the job teardown.
            if let Some(dir) = std::env::var_os("CHAOS_DUMP_DIR") {
                let dir = std::path::PathBuf::from(dir);
                let path = dir.join(format!("chaos-case-{case}.txt"));
                if let Err(error) = std::fs::create_dir_all(&dir)
                    .and_then(|()| std::fs::write(&path, format!("{driving:?}\n\n{dump}")))
                {
                    eprintln!("could not write {}: {error}", path.display());
                } else {
                    eprintln!("flight-recorder dump written to {}", path.display());
                }
            }
            std::panic::resume_unwind(failure);
        }
        if heap.migrations > 0 {
            migrated += 1;
        }
        if heap.has_fault_activity() {
            faulty += 1;
        }
    }
    let need_faulty = drivings * 50 / 56;
    assert!(
        faulty >= need_faulty,
        "only {faulty} drivings exercised fault machinery; need at least {need_faulty}"
    );
    // The default campaign must also exercise the migration arbiter end to
    // end at least once; longer CHAOS_ITERS campaigns inherit the bar.
    // Tiny smoke campaigns (CI runs single iterations just to exercise the
    // recorder) can't statistically promise a migration, so the bar starts
    // at 16 drivings.
    assert!(
        drivings < 16 || migrated >= 1,
        "no driving triggered a checkpoint migration; the sweep lost its straggler coverage"
    );
}

/// Multi-hop salvage: crash the task's first node mid-inference, let it
/// recover onto the second node, crash *that* node too, and check the task
/// still completes — resuming from a strictly later checkpoint on the
/// second hop and appearing exactly once in the merged records.
#[test]
fn multi_hop_salvage_resumes_from_advancing_checkpoints() {
    let npu = NpuConfig::paper_default();
    let request = TaskRequest::new(TaskId(0), ModelKind::CnnVggNet);
    let tasks: Vec<PreparedTask> = prepare_requests(&[request], &npu, None);
    let total = tasks[0].plan.total_cycles();
    assert!(
        total > Cycles::new(1_000_000),
        "VggNet must be long enough to crash twice"
    );

    let backoff = RecoveryConfig::checkpointed().backoff_base_ms;
    let downtime = npu.millis_to_cycles(2.0);
    // First crash a quarter of the way in; the second once the recovered
    // copy has run for over half the plan again on the other node.
    let crash0 = Cycles::new(total.get() / 4);
    let crash1 = crash0 + npu.millis_to_cycles(backoff) + Cycles::new(total.get() * 11 / 20);
    let schedule = FaultSchedule::from_events(vec![
        NodeFault {
            node: 0,
            start: crash0,
            end: crash0 + downtime,
            kind: FaultKind::Crash,
        },
        NodeFault {
            node: 1,
            start: crash1,
            end: crash1 + downtime,
            kind: FaultKind::Crash,
        },
    ]);

    let config = OnlineClusterConfig::new(
        2,
        SchedulerConfig::paper_default(),
        OnlineDispatchPolicy::Predictive,
    )
    .with_faults(ClusterFaultPlan::new(schedule));
    let simulator = OnlineClusterSimulator::new(config);
    let heap = simulator.run(&tasks);
    let reference = simulator.run_reference(&tasks);
    assert_eq!(heap, reference);

    // The task survives both crashes and is served exactly once.
    assert!(heap.abandoned.is_empty());
    let records = heap.cluster.merged_records();
    assert_eq!(records.iter().filter(|r| r.id == TaskId(0)).count(), 1);
    assert_eq!(heap.crashes, 2);
    assert_eq!(heap.recoveries, 2);

    // Two hops: node 0 → node 1 → node 0, with lifetime attempt numbers.
    assert_eq!(heap.recovery_log.len(), 2);
    let first = heap.recovery_log[0];
    let second = heap.recovery_log[1];
    assert_eq!(
        (first.task, first.from_node, first.to_node, first.attempt),
        (TaskId(0), 0, 1, 1)
    );
    assert_eq!(
        (
            second.task,
            second.from_node,
            second.to_node,
            second.attempt
        ),
        (TaskId(0), 1, 0, 2)
    );

    // Checkpoint cursors advance monotonically: the first crash salvages
    // real committed progress, and the second salvages strictly more — the
    // second hop never replays work the first already committed.
    assert!(first.resume_executed > Cycles::new(0));
    assert!(second.resume_executed > first.resume_executed);
    assert!(second.resume_executed < total);
}

/// The custody state machine's worst day, walked deterministically: a
/// straggling node evacuates its task, the destination crashes while the
/// checkpoint is in flight, the redirect to the only surviving node is
/// severed by a link drop, and the backoff retry finally lands over the
/// throttled link — exactly one record, nothing abandoned, custody clean.
#[test]
fn destination_crash_link_drop_backoff_retry_lands_exactly_once() {
    let npu = NpuConfig::paper_default();
    let d = |ms: f64| npu.millis_to_cycles(ms);
    let request = TaskRequest::new(TaskId(0), ModelKind::CnnVggNet);
    let tasks: Vec<PreparedTask> = prepare_requests(&[request], &npu, None);

    let throttled = LinkFaultKind::Degraded {
        bandwidth_num: 1,
        bandwidth_den: 16,
    };
    // Node 0 straggles at 1/8 speed until just after the evacuation
    // departs, then crashes so the redirect cannot bounce the task home.
    // Node 1 (the chosen destination) crashes while the checkpoint is in
    // flight. Node 2 stays healthy, but its inbound link from node 0 is
    // throttled the whole run and fully down across the first redirect's
    // flight window.
    let schedule = FaultSchedule::from_events(vec![
        NodeFault {
            node: 0,
            start: d(0.5),
            end: d(1.4),
            kind: FaultKind::Degrade {
                speed_num: 1,
                speed_den: 8,
            },
        },
        NodeFault {
            node: 0,
            start: d(1.5),
            end: d(100.0),
            kind: FaultKind::Crash,
        },
        NodeFault {
            node: 1,
            start: d(1.0),
            end: d(100.0),
            kind: FaultKind::Crash,
        },
    ])
    .with_links(vec![
        LinkFault {
            from: 0,
            to: 2,
            start: d(0.01),
            end: d(5.0),
            kind: throttled,
        },
        LinkFault {
            from: 0,
            to: 2,
            start: d(5.0),
            end: d(5.8),
            kind: LinkFaultKind::Down,
        },
        LinkFault {
            from: 0,
            to: 2,
            start: d(5.8),
            end: d(20.0),
            kind: throttled,
        },
    ]);

    let migration =
        MigrationConfig::new(2.0).with_custody(CustodyConfig::redirect().with_timeout_ms(200.0));
    let config = OnlineClusterConfig::new(
        3,
        SchedulerConfig::paper_default(),
        OnlineDispatchPolicy::Predictive,
    )
    .with_faults(ClusterFaultPlan::new(schedule))
    .with_migration(migration);
    let simulator = OnlineClusterSimulator::new(config);
    let heap = simulator.run(&tasks);
    let reference = simulator.run_reference(&tasks);
    assert_eq!(heap, reference);

    // One evacuation: off the straggler toward node 1, which is down by
    // the time the payload arrives — attempt 1 fails at the landing check.
    assert_eq!(heap.migration_log.len(), 1);
    let evacuation = heap.migration_log[0];
    assert_eq!(
        (evacuation.task, evacuation.from_node, evacuation.to_node),
        (TaskId(0), 0, 1)
    );
    assert_eq!(evacuation.at, d(0.5));
    assert!(evacuation.arrive_at > d(1.0) && evacuation.arrive_at < d(1.5));

    // Two failed attempts (destination down, then the severed redirect)
    // and two committed redirects, both re-routing 0 → 2: attempt 2 right
    // after the landing failure's backoff, attempt 3 once the second
    // backoff clears the link-down window.
    assert_eq!(heap.transfer_failures, 2);
    assert_eq!(heap.redirects, 2);
    assert_eq!(heap.redirect_log.len(), 2);
    let first = heap.redirect_log[0];
    let second = heap.redirect_log[1];
    assert_eq!(
        (first.task, first.from_node, first.to_node, first.attempt),
        (TaskId(0), 0, 2, 2)
    );
    assert!(first.at > d(1.5) && first.at < d(2.0));
    assert_eq!(
        (
            second.task,
            second.from_node,
            second.to_node,
            second.attempt
        ),
        (TaskId(0), 0, 2, 3)
    );
    assert_eq!(second.at, d(6.0));

    // Exactly-once custody: the task lands on node 2, is served exactly
    // once, and reconciliation finds nothing still in flight.
    assert!(heap.abandoned.is_empty());
    assert!(heap.custody_error.is_none());
    assert_eq!(heap.crashes, 2);
    let records = heap.cluster.merged_records();
    assert_eq!(records.iter().filter(|r| r.id == TaskId(0)).count(), 1);
    assert_eq!(
        heap.cluster.node_outcomes[2]
            .records
            .iter()
            .filter(|r| r.id == TaskId(0))
            .count(),
        1,
        "the task must complete on the only surviving node"
    );
}
