//! Randomized property tests over the core data structures and simulation
//! invariants.
//!
//! These were originally written against `proptest`; the workspace now builds
//! hermetically (no crates.io), so each property is driven by an explicit
//! seeded RNG loop instead of a strategy macro. Case counts are kept modest
//! because several properties drive the full multi-task engine; each case
//! still covers a randomly drawn configuration, workload or GEMM shape.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use prema::cluster::{ClusterConfig, ClusterSimulator, DispatchPolicy};
use prema::metrics::{MultiTaskMetrics, TaskOutcome};
use prema::models::layer::{GemmDims, Layer, LayerKind};
use prema::models::{SeqSpec, ALL_EVAL_MODELS};
use prema::npu::gemm::{GemmShape, TilePlan};
use prema::npu::{Cycles, NpuConfig};
use prema::predictor::analytical::estimate_layer_cycles;
use prema::predictor::SeqLenTable;
use prema::scheduler::plan::reference::ReferenceCursor;
use prema::scheduler::plan::{ExecutionPlan, ProgressCursor};
use prema::scheduler::preemption::{select_mechanism, MechanismDecisionInputs};
use prema::{
    NpuSimulator, PolicyKind, PreemptionMechanism, PreemptionMode, Priority, SchedulerConfig,
    StepOutcome, TaskId, TaskRequest,
};

/// Cycles arithmetic never panics and subtraction saturates at zero.
#[test]
fn cycles_arithmetic_is_total() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..64 {
        let a = rng.gen_range(0u64..u64::MAX / 2);
        let b = rng.gen_range(0u64..u64::MAX / 2);
        let ca = Cycles::new(a);
        let cb = Cycles::new(b);
        assert_eq!((ca + cb).get(), a + b);
        assert_eq!(ca - cb, Cycles::new(a.saturating_sub(b)));
        assert!(ca.min(cb) <= ca.max(cb));
        assert!((ca + cb) >= ca.max(cb));
    }
}

/// Tiling covers the full GEMM: the tile count matches the analytical
/// formula in every case and per-tile latencies sum to the plan total.
#[test]
fn tile_plan_counts_match_formula() {
    let cfg = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0x711E);
    for _ in 0..64 {
        let m = rng.gen_range(1u64..2048);
        let k = rng.gen_range(1u64..4096);
        let n = rng.gen_range(1u64..8192);
        let shape = GemmShape::new(m, k, n);
        let plan = TilePlan::new(shape, &cfg);
        let m_tiles = m.div_ceil(cfg.systolic_width);
        let k_tiles = k.div_ceil(cfg.systolic_height);
        let n_inner = n / cfg.accumulator_depth;
        let has_edge = n % cfg.accumulator_depth != 0;
        assert_eq!(plan.inner_tile_count(), m_tiles * k_tiles * n_inner);
        assert_eq!(
            plan.outer_tile_count(),
            if has_edge { m_tiles * k_tiles } else { 0 }
        );
        assert_eq!(plan.iter().count() as u64, plan.tile_count());
        let iter_cycles: Cycles = plan.iter().map(|t| t.latency()).sum();
        assert_eq!(iter_cycles, plan.total_cycles());
    }
}

/// Algorithm 1 is monotone: growing any GEMM dimension never reduces the
/// estimated latency.
#[test]
fn analytical_estimate_is_monotone() {
    let cfg = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0x0A1);
    for _ in 0..64 {
        let m = rng.gen_range(1u64..1024);
        let k = rng.gen_range(1u64..1024);
        let n = rng.gen_range(1u64..4096);
        let grow_m = rng.gen_range(0u64..512);
        let grow_k = rng.gen_range(0u64..512);
        let grow_n = rng.gen_range(0u64..2048);
        let base = estimate_layer_cycles(GemmDims { m, k, n }, &cfg);
        let grown = estimate_layer_cycles(
            GemmDims {
                m: m + grow_m,
                k: k + grow_k,
                n: n + grow_n,
            },
            &cfg,
        );
        assert!(grown >= base);
    }
}

/// The sequence-length regression always predicts within the observed
/// min/max band of the nearest profiled bucket.
#[test]
fn seqlen_prediction_stays_in_observed_range() {
    let mut rng = StdRng::seed_from_u64(0x5E0);
    for _ in 0..64 {
        let sample_count = rng.gen_range(1usize..100);
        let samples: Vec<(u64, u64)> = (0..sample_count)
            .map(|_| (rng.gen_range(1u64..100), rng.gen_range(1u64..200)))
            .collect();
        let query = rng.gen_range(1u64..100);
        let table = SeqLenTable::from_samples(samples);
        let predicted = table.predict(query);
        let (lo, hi) = table.observed_range(query).expect("table is non-empty");
        assert!(predicted >= lo && predicted <= hi);
    }
}

/// Multi-program metrics stay within their mathematical bounds.
#[test]
fn metrics_are_bounded() {
    let mut rng = StdRng::seed_from_u64(0xB0);
    let weights = [1.0f64, 3.0, 9.0];
    for _ in 0..64 {
        let count = rng.gen_range(1usize..16);
        let outcomes: Vec<TaskOutcome> = (0..count)
            .map(|_| {
                let isolated = rng.gen_range(1.0f64..1e6);
                let slowdown = rng.gen_range(1.0f64..4.0);
                TaskOutcome {
                    isolated_time: isolated,
                    turnaround_time: isolated * slowdown,
                    priority_weight: weights[rng.gen_range(0usize..weights.len())],
                }
            })
            .collect();
        let n = outcomes.len() as f64;
        let metrics = MultiTaskMetrics::from_outcomes(&outcomes);
        assert!(metrics.antt >= 1.0 - 1e-9);
        assert!(metrics.stp > 0.0 && metrics.stp <= n + 1e-9);
        assert!(metrics.fairness > 0.0 && metrics.fairness <= 1.0 + 1e-9);
    }
}

/// Algorithm 3 never returns KILL, and drains exactly when waiting hurts
/// the candidate less than preemption hurts the current task.
#[test]
fn dynamic_mechanism_selection_is_consistent() {
    let mut rng = StdRng::seed_from_u64(0xA163);
    for _ in 0..64 {
        let current_estimated = rng.gen_range(1u64..10_000_000);
        let current_progress = rng.gen_range(0.0f64..1.0);
        let candidate_estimated = rng.gen_range(1u64..10_000_000);
        let current_executed = (current_estimated as f64 * current_progress) as u64;
        let inputs = MechanismDecisionInputs {
            current_estimated: Cycles::new(current_estimated),
            current_executed: Cycles::new(current_executed),
            candidate_estimated: Cycles::new(candidate_estimated),
            candidate_executed: Cycles::ZERO,
        };
        let decision = select_mechanism(inputs);
        assert_ne!(decision, PreemptionMechanism::Kill);
        let degradation_current = candidate_estimated as f64 / current_estimated.max(1) as f64;
        let degradation_candidate =
            (current_estimated - current_executed) as f64 / candidate_estimated.max(1) as f64;
        if degradation_current > degradation_candidate {
            assert_eq!(decision, PreemptionMechanism::Drain);
        } else {
            assert_eq!(decision, PreemptionMechanism::Checkpoint);
        }
    }
}

/// A progress cursor advanced in arbitrary random steps always consumes
/// exactly the plan's total cycles, keeps its live checkpoint footprint
/// within the on-chip budget, and reports monotone progress.
#[test]
fn cursor_conserves_cycles_under_arbitrary_stepping() {
    let cfg = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0xC507);
    for _ in 0..16 {
        let model = ALL_EVAL_MODELS[rng.gen_range(0usize..ALL_EVAL_MODELS.len())];
        let seq = SeqSpec::for_model(model, 12);
        let plan = ExecutionPlan::compile(model, 1, seq, &cfg);
        let mut cursor = ProgressCursor::start();
        let mut consumed_total = Cycles::ZERO;
        let mut prev_executed = Cycles::ZERO;
        let step_count = rng.gen_range(1usize..64);
        for _ in 0..step_count {
            let step = rng.gen_range(1u64..2_000_000);
            let consumed = cursor.advance(&plan, Cycles::new(step));
            consumed_total += consumed;
            assert!(cursor.executed() >= prev_executed);
            prev_executed = cursor.executed();
            assert!(cursor.live_checkpoint_bytes(&plan) <= cfg.max_checkpoint_bytes());
            assert!(cursor.executed() + cursor.remaining(&plan) == plan.total_cycles());
        }
        cursor.advance(&plan, plan.total_cycles());
        assert!(cursor.is_complete(&plan));
        assert_eq!(cursor.executed(), plan.total_cycles());
    }
}

/// The flat (prefix-sum arena) progress cursor is observably equivalent to
/// the original nested interval-walk cursor on random plans under random
/// budget sequences — including zero budgets, boundary-exact budgets and
/// overshooting budgets. Every observable is compared after every step:
/// consumed cycles, executed total, completion, layer index, distance to the
/// next preemption boundary and the live checkpoint footprint.
#[test]
fn flat_cursor_is_equivalent_to_the_reference_interval_walk() {
    let cfg = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0xF1A7);
    for case in 0..24 {
        let model = ALL_EVAL_MODELS[rng.gen_range(0usize..ALL_EVAL_MODELS.len())];
        let batch = [1u64, 2, 4, 8][rng.gen_range(0usize..4)];
        let seq = SeqSpec::for_model(model, rng.gen_range(5u64..25));
        let plan = ExecutionPlan::compile(model, batch, seq, &cfg);
        let mut flat = ProgressCursor::start();
        let mut reference = ReferenceCursor::start();
        let step_count = rng.gen_range(8usize..96);
        for step in 0..step_count {
            // Mix step regimes: tiny, quantum-scale, occasionally zero, and
            // occasionally exactly to the next boundary (the trickiest
            // normalization point for the flat representation).
            let budget = match rng.gen_range(0u32..8) {
                0 => Cycles::ZERO,
                1 => reference.cycles_to_boundary(&plan),
                2 => Cycles::new(rng.gen_range(1u64..200)),
                3..=5 => Cycles::new(rng.gen_range(1u64..400_000)),
                _ => Cycles::new(rng.gen_range(1u64..4_000_000)),
            };
            let consumed_flat = flat.advance(&plan, budget);
            let consumed_reference = reference.advance(&plan, budget);
            let context = format!("case {case} step {step} model {model:?} budget {budget}");
            assert_eq!(consumed_flat, consumed_reference, "{context}");
            assert_eq!(flat.executed(), reference.executed(), "{context}");
            assert_eq!(
                flat.is_complete(&plan),
                reference.is_complete(&plan),
                "{context}"
            );
            assert_eq!(
                flat.remaining(&plan),
                reference.remaining(&plan),
                "{context}"
            );
            assert_eq!(
                flat.layer_index(&plan),
                reference.layer_index(),
                "{context}"
            );
            assert_eq!(
                flat.cycles_to_boundary(&plan),
                reference.cycles_to_boundary(&plan),
                "{context}"
            );
            assert_eq!(
                flat.live_checkpoint_bytes(&plan),
                reference.live_checkpoint_bytes(&plan),
                "{context}"
            );
        }
        // Drive both to completion and compare the terminal state too.
        flat.advance(&plan, plan.total_cycles());
        reference.advance(&plan, plan.total_cycles());
        assert_eq!(flat.is_complete(&plan), reference.is_complete(&plan));
        assert_eq!(flat.executed(), reference.executed());
        // KILL-style reset round-trips on both.
        flat.reset();
        reference.reset();
        assert_eq!(flat.executed(), reference.executed());
        assert_eq!(flat.layer_index(&plan), reference.layer_index());
    }
}

/// A single fully-connected layer run through the whole stack (layer ->
/// lowering -> timing) has a latency at least as large as its ideal
/// compute-bound lower bound.
#[test]
fn layer_latency_respects_compute_lower_bound() {
    let cfg = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0xFC);
    for _ in 0..16 {
        let in_features = rng.gen_range(1u64..8192);
        let out_features = rng.gen_range(1u64..8192);
        let batch = rng.gen_range(1u64..32);
        let layer = Layer::new(
            "fc",
            LayerKind::FullyConnected {
                in_features,
                out_features,
            },
        );
        let work = prema::models::lowering::lower_layer(&layer, batch);
        let timing = prema::npu::LayerTiming::model(&work, &cfg);
        let ideal_cycles = layer.macs(batch).div_ceil(cfg.peak_macs_per_cycle());
        assert!(timing.total_cycles().get() >= ideal_cycles);
    }
}

/// End-to-end engine invariants hold for random small workloads under
/// random policies and preemption modes: every task completes, turnaround
/// is never below the isolated time, and the makespan bounds every
/// completion.
#[test]
fn engine_invariants_hold_for_random_workloads() {
    let cfg = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0xE26);
    for _ in 0..8 {
        let policy = PolicyKind::ALL[rng.gen_range(0usize..PolicyKind::ALL.len())];
        let mode = if rng.gen::<bool>() {
            PreemptionMode::Dynamic
        } else {
            PreemptionMode::NonPreemptive
        };
        let task_count = rng.gen_range(2usize..5);
        let requests: Vec<TaskRequest> = (0..task_count)
            .map(|i| {
                let model = ALL_EVAL_MODELS[rng.gen_range(0usize..ALL_EVAL_MODELS.len())];
                TaskRequest::new(TaskId(i as u64), model)
                    .with_priority(Priority::ALL[rng.gen_range(0usize..3)])
                    .with_arrival(Cycles::new(rng.gen_range(0u64..20_000_000)))
                    .with_seq(SeqSpec::for_model(model, 10))
            })
            .collect();
        let sim = NpuSimulator::new(cfg.clone(), SchedulerConfig::named(policy, mode));
        let prepared = sim.prepare(&requests);
        let outcome = sim.run(&prepared);
        assert_eq!(outcome.records.len(), requests.len());
        for record in &outcome.records {
            assert!(record.completion <= outcome.makespan);
            assert!(record.completion > record.arrival);
            assert!(record.turnaround() >= record.isolated_cycles);
        }
    }
}

/// `run_until` is pure suspension: a session resumed at arbitrary random
/// horizons — from single-cycle nudges to multi-quantum jumps — produces a
/// `SimOutcome` bit-identical to the one-shot `run()`, for every scheduling
/// policy and preemption mode, on both the fast-forwarding engine and the
/// step-every-quantum reference. Per-task records, makespan, preemption
/// counters *and* the scheduler-invocation count must all survive the
/// suspend/resume composition exactly.
#[test]
fn run_until_composed_over_random_horizons_is_bit_identical_to_one_shot() {
    let cfg = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0x5E55);
    let mut policies_seen = 0usize;
    let mut total_pauses = 0usize;
    for policy in PolicyKind::ALL {
        for mode in [
            PreemptionMode::NonPreemptive,
            PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            PreemptionMode::Static(PreemptionMechanism::Kill),
            PreemptionMode::Dynamic,
            PreemptionMode::DynamicKill,
        ] {
            // Static(KILL) + round-robin livelocks by construction; the
            // engine's safety valve reports it, so it is excluded exactly as
            // the paper's evaluation excludes it.
            if policy == PolicyKind::RoundRobin
                && mode == PreemptionMode::Static(PreemptionMechanism::Kill)
            {
                continue;
            }
            policies_seen += 1;
            let task_count = rng.gen_range(2usize..5);
            let requests: Vec<TaskRequest> = (0..task_count)
                .map(|i| {
                    let model = ALL_EVAL_MODELS[rng.gen_range(0usize..ALL_EVAL_MODELS.len())];
                    TaskRequest::new(TaskId(i as u64), model)
                        .with_priority(Priority::ALL[rng.gen_range(0usize..3)])
                        .with_arrival(Cycles::new(rng.gen_range(0u64..4_000_000)))
                        .with_seq(SeqSpec::for_model(model, 12))
                })
                .collect();
            let sim = NpuSimulator::new(cfg.clone(), SchedulerConfig::named(policy, mode));
            let prepared = sim.prepare(&requests);
            let one_shot = sim.run(&prepared);
            let reference = sim.run_reference(&prepared);

            for (label, mut session, expected) in [
                ("fast", sim.session(&prepared), &one_shot),
                ("reference", sim.session_reference(&prepared), &reference),
            ] {
                let mut horizon = Cycles::ZERO;
                loop {
                    // Random horizon schedule: mostly quantum-scale jumps,
                    // sometimes single cycles (pausing mid-everything),
                    // sometimes huge leaps.
                    horizon += Cycles::new(match rng.gen_range(0u32..8) {
                        0 => 1,
                        1..=4 => rng.gen_range(1u64..400_000),
                        5 | 6 => rng.gen_range(1u64..4_000_000),
                        _ => rng.gen_range(1u64..40_000_000),
                    });
                    if session.run_until(horizon) == StepOutcome::Drained {
                        break;
                    }
                    total_pauses += 1;
                }
                let composed = session.finish();
                assert_eq!(
                    &composed, expected,
                    "resumed {label} session diverged from one-shot under {policy:?}/{mode:?}"
                );
            }
        }
    }
    assert_eq!(policies_seen, PolicyKind::ALL.len() * 5 - 1);
    assert!(
        total_pauses > policies_seen,
        "the horizon schedules must actually pause sessions ({total_pauses} pauses)"
    );
}

/// Cluster conservation: for random open-loop workloads (random arrival
/// process, rate, node count, per-node scheduler and dispatch policy),
/// every generated request is served exactly once — no drops, no
/// duplicates across nodes — each record lives on exactly the node its
/// assignment names, and per-task invariants carry over to the cluster.
#[test]
fn cluster_serves_every_request_exactly_once() {
    use prema::workload::arrivals::{generate_open_loop, ArrivalProcess, OpenLoopConfig};

    let mut rng = StdRng::seed_from_u64(0xC1C5);
    for case in 0..6 {
        let process = match rng.gen_range(0u32..3) {
            0 => ArrivalProcess::Poisson {
                rate_per_ms: rng.gen_range(0.1f64..0.6),
            },
            1 => ArrivalProcess::Bursty {
                on_rate_per_ms: rng.gen_range(0.5f64..2.0),
                mean_on_ms: rng.gen_range(2.0f64..10.0),
                mean_off_ms: rng.gen_range(5.0f64..20.0),
            },
            _ => ArrivalProcess::Diurnal {
                trough_rate_per_ms: rng.gen_range(0.01f64..0.1),
                peak_rate_per_ms: rng.gen_range(0.3f64..0.8),
                period_ms: rng.gen_range(20.0f64..80.0),
            },
        };
        let config =
            OpenLoopConfig::poisson(1.0, rng.gen_range(20.0f64..60.0)).with_process(process);
        let spec = generate_open_loop(&config, &mut rng);
        if spec.is_empty() {
            continue;
        }
        let nodes = rng.gen_range(1usize..6);
        let dispatch = DispatchPolicy::ALL[rng.gen_range(0usize..DispatchPolicy::ALL.len())];
        let scheduler = if rng.gen::<bool>() {
            SchedulerConfig::paper_default()
        } else {
            SchedulerConfig::np_fcfs()
        };
        let cluster = ClusterSimulator::new(
            ClusterConfig::new(nodes, scheduler, dispatch).with_dispatch_seed(case),
        );
        let outcome = cluster.run_requests(&spec.requests, None);
        let context = format!("case {case} nodes {nodes} dispatch {dispatch}");

        // Exactly-once service: merged ids == generated ids.
        assert_eq!(outcome.task_count(), spec.len(), "{context}");
        let served: Vec<u64> = outcome.merged_records().iter().map(|r| r.id.0).collect();
        let mut expected: Vec<u64> = spec.requests.iter().map(|r| r.id.0).collect();
        expected.sort_unstable();
        assert_eq!(served, expected, "{context}");

        // Assignments are a bijection onto the served records, each on the
        // node it names.
        assert_eq!(outcome.assignments.len(), spec.len(), "{context}");
        for assignment in &outcome.assignments {
            assert!(assignment.node < nodes, "{context}");
            let node = &outcome.node_outcomes[assignment.node];
            assert!(node.record(assignment.task).is_some(), "{context}");
        }

        // Per-task invariants hold cluster-wide.
        let makespan = outcome.makespan();
        for record in outcome.merged_records() {
            assert!(record.completion <= makespan, "{context}");
            assert!(record.first_start >= record.arrival, "{context}");
            assert!(record.turnaround() >= record.isolated_cycles, "{context}");
        }
    }
}

/// The event-heap closed-loop driver is bit-identical to the naive stepping
/// reference: for random node counts, per-node schedulers, dispatch
/// policies, arrival processes, work-stealing and SLA-admission settings,
/// `OnlineClusterSimulator::run` and `run_reference` produce the same
/// `OnlineOutcome` — records, assignments (steal rewrites included), shed
/// sequence, steal count — and the same `online_outcome_hash`. Since the
/// reference computes its dispatch/steal/shed signals from resident scans
/// while the heap loop reads the engine's incremental aggregates, this also
/// cross-checks those aggregates against an independent implementation.
#[test]
fn event_heap_closed_loop_is_bit_identical_to_the_stepping_reference() {
    use prema::cluster::{online_outcome_hash, OnlineClusterConfig, OnlineClusterSimulator};
    use prema::workload::arrivals::{generate_open_loop, ArrivalProcess, OpenLoopConfig};
    use prema::workload::prepare::prepare_requests;

    let mut rng = StdRng::seed_from_u64(0x0EA9_4EA9);
    let npu = NpuConfig::paper_default();
    // Real (analytical) estimates, not oracle ones: the predictor's
    // undershoot makes running tasks overrun their estimates, exercising
    // the estimated-remaining clamp paths in the heap loop's admission
    // caches that perfect estimates can never reach.
    let predictor = prema::AnalyticalPredictor::new(npu.clone());
    let mut nontrivial_cases = 0usize;
    let mut steals_seen = 0u64;
    let mut sheds_seen = 0usize;
    for case in 0..18 {
        let process = match rng.gen_range(0u32..3) {
            0 => ArrivalProcess::Poisson {
                rate_per_ms: rng.gen_range(0.2f64..1.6),
            },
            1 => ArrivalProcess::Bursty {
                on_rate_per_ms: rng.gen_range(0.5f64..3.0),
                mean_on_ms: rng.gen_range(2.0f64..10.0),
                mean_off_ms: rng.gen_range(5.0f64..20.0),
            },
            _ => ArrivalProcess::Diurnal {
                trough_rate_per_ms: rng.gen_range(0.01f64..0.2),
                peak_rate_per_ms: rng.gen_range(0.5f64..1.5),
                period_ms: rng.gen_range(20.0f64..80.0),
            },
        };
        let config =
            OpenLoopConfig::poisson(1.0, rng.gen_range(20.0f64..70.0)).with_process(process);
        let spec = generate_open_loop(&config, &mut rng);
        if spec.is_empty() {
            continue;
        }
        let prepared = prepare_requests(&spec.requests, &npu, Some(&predictor));

        let nodes = rng.gen_range(1usize..9);
        let dispatch = [
            prema::cluster::OnlineDispatchPolicy::ShortestQueue,
            prema::cluster::OnlineDispatchPolicy::LeastWork,
            prema::cluster::OnlineDispatchPolicy::Predictive,
        ][rng.gen_range(0usize..3)];
        let scheduler = match rng.gen_range(0u32..3) {
            0 => SchedulerConfig::paper_default(),
            1 => SchedulerConfig::np_fcfs(),
            _ => SchedulerConfig::named(
                PolicyKind::Hpf,
                PreemptionMode::Static(PreemptionMechanism::Checkpoint),
            ),
        };
        let mut online = OnlineClusterConfig::new(nodes, scheduler, dispatch);
        if rng.gen_bool(0.4) {
            online = online.with_work_stealing();
        }
        if rng.gen_bool(0.4) {
            // Mid-range targets so shedding actually engages on some cases.
            online = online.with_admission(rng.gen_range(20.0f64..400.0));
        }

        let simulator = OnlineClusterSimulator::new(online.clone());
        let heap = simulator.run(&prepared);
        let reference = simulator.run_reference(&prepared);
        assert_eq!(
            heap, reference,
            "event-heap loop diverged from the stepping reference \
             (case {case}, nodes {nodes}, dispatch {dispatch}, config {online:?})"
        );
        assert_eq!(online_outcome_hash(&heap), online_outcome_hash(&reference));
        nontrivial_cases += 1;
        steals_seen += heap.steals;
        sheds_seen += heap.shed.len();
    }
    assert!(nontrivial_cases >= 12, "enough non-empty cases ran");
    assert!(
        steals_seen > 0,
        "the random cases must exercise work stealing"
    );
    assert!(sheds_seen > 0, "the random cases must exercise shedding");
}

/// The engine's incrementally maintained closed-loop aggregates
/// (`predicted_remaining_work`, `predicted_blocking_work`,
/// `revocable_work`, `best_steal_candidate`, `best_shed_candidate`) always
/// agree with a brute-force scan over `resident_tasks()`, at every pause of
/// randomly driven sessions that also inject, revoke and re-inject work
/// mid-flight.
#[test]
fn incremental_aggregates_match_resident_scans_under_random_driving() {
    use prema::PreparedTask;

    let npu = NpuConfig::paper_default();
    let mut rng = StdRng::seed_from_u64(0xA66E);
    for case in 0..8 {
        let scheduler = if case % 2 == 0 {
            SchedulerConfig::paper_default()
        } else {
            SchedulerConfig::np_fcfs()
        };
        let sim = NpuSimulator::new(npu.clone(), scheduler);
        let task_count = rng.gen_range(3usize..8);
        let requests: Vec<TaskRequest> = (0..task_count)
            .map(|i| {
                let model = ALL_EVAL_MODELS[rng.gen_range(0usize..ALL_EVAL_MODELS.len())];
                TaskRequest::new(TaskId(i as u64), model)
                    .with_priority(Priority::ALL[rng.gen_range(0usize..3)])
                    .with_arrival(Cycles::new(rng.gen_range(0u64..6_000_000)))
                    .with_seq(SeqSpec::for_model(model, 10))
            })
            .collect();
        let prepared = sim.prepare(&requests);
        let mut session = sim.session(&prepared[..2]);
        let mut to_inject: Vec<PreparedTask> = prepared[2..].to_vec();
        let mut horizon = Cycles::ZERO;
        let mut revoked: Vec<PreparedTask> = Vec::new();
        loop {
            let residents = session.resident_tasks();
            // Aggregates vs brute force.
            let remaining: Cycles = residents
                .iter()
                .map(|r| r.estimated_total - r.executed)
                .sum();
            assert_eq!(session.predicted_remaining_work(), remaining, "case {case}");
            for priority in Priority::ALL {
                let blocking: Cycles = residents
                    .iter()
                    .filter(|r| r.priority >= priority)
                    .map(|r| r.estimated_total - r.executed)
                    .sum();
                assert_eq!(
                    session.predicted_blocking_work(priority),
                    blocking,
                    "case {case} {priority:?}"
                );
            }
            let revocable: Vec<_> = residents.iter().filter(|r| r.revocable).collect();
            let stealable: Cycles = revocable.iter().map(|r| r.estimated_remaining()).sum();
            assert_eq!(session.revocable_work(), stealable, "case {case}");
            let best_steal = revocable
                .iter()
                .max_by_key(|r| (r.estimated_remaining(), std::cmp::Reverse(r.id)))
                .map(|r| r.id);
            assert_eq!(
                session.best_steal_candidate().map(|r| r.id),
                best_steal,
                "case {case}"
            );
            let best_shed = revocable
                .iter()
                .min_by_key(|r| {
                    (
                        r.priority,
                        std::cmp::Reverse(r.estimated_remaining()),
                        std::cmp::Reverse(r.id),
                    )
                })
                .map(|r| r.id);
            assert_eq!(
                session.best_shed_candidate().map(|r| r.id),
                best_shed,
                "case {case}"
            );

            // Random driving: inject, revoke (and remember for re-injection).
            if !to_inject.is_empty() && rng.gen_bool(0.5) {
                session
                    .inject(to_inject.pop().expect("nonempty"))
                    .expect("fresh id injects cleanly");
            }
            if rng.gen_bool(0.3) {
                if let Some(candidate) = session.best_steal_candidate() {
                    let handed_back = session
                        .revoke(candidate.id)
                        .expect("steal candidate is revocable");
                    revoked.push(handed_back);
                }
            }
            if !revoked.is_empty() && rng.gen_bool(0.5) {
                // Re-inject a previously revoked task into the same session
                // (the multi-hop work-stealing shape).
                session
                    .inject(revoked.pop().expect("nonempty"))
                    .expect("revoked id re-injects cleanly");
            }
            if session.run_until(horizon) == StepOutcome::Drained
                && to_inject.is_empty()
                && revoked.is_empty()
            {
                break;
            }
            horizon += Cycles::new(rng.gen_range(50_000u64..900_000));
        }
        let outcome = session.finish();
        // Revoked-and-never-reinjected tasks produce no record; everything
        // else completes exactly once.
        assert!(outcome.records.len() <= task_count);
    }
}
