//! Property-based tests over the core data structures and simulation
//! invariants, using `proptest`.
//!
//! Case counts are kept modest because several properties drive the full
//! multi-task engine; each case still covers a randomly drawn configuration,
//! workload or GEMM shape.

use proptest::prelude::*;

use prema::models::layer::{GemmDims, Layer, LayerKind};
use prema::models::{SeqSpec, ALL_EVAL_MODELS};
use prema::npu::gemm::{GemmShape, TilePlan};
use prema::npu::{Cycles, NpuConfig};
use prema::predictor::analytical::estimate_layer_cycles;
use prema::predictor::SeqLenTable;
use prema::scheduler::plan::{ExecutionPlan, ProgressCursor};
use prema::scheduler::preemption::{select_mechanism, MechanismDecisionInputs};
use prema::metrics::{MultiTaskMetrics, TaskOutcome};
use prema::{
    NpuSimulator, PolicyKind, PreemptionMechanism, PreemptionMode, Priority, SchedulerConfig,
    TaskId, TaskRequest,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cycles arithmetic never panics and subtraction saturates at zero.
    #[test]
    fn cycles_arithmetic_is_total(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
        let ca = Cycles::new(a);
        let cb = Cycles::new(b);
        prop_assert_eq!((ca + cb).get(), a + b);
        prop_assert_eq!(ca - cb, Cycles::new(a.saturating_sub(b)));
        prop_assert!(ca.min(cb) <= ca.max(cb));
        prop_assert!((ca + cb) >= ca.max(cb));
    }

    /// Tiling covers the full GEMM: tile MACs sum to the shape's MACs when
    /// all dimensions align with the array, and the tile count matches the
    /// analytical formula in every case.
    #[test]
    fn tile_plan_counts_match_formula(
        m in 1u64..2048,
        k in 1u64..4096,
        n in 1u64..8192,
    ) {
        let cfg = NpuConfig::paper_default();
        let shape = GemmShape::new(m, k, n);
        let plan = TilePlan::new(shape, &cfg);
        let m_tiles = m.div_ceil(cfg.systolic_width);
        let k_tiles = k.div_ceil(cfg.systolic_height);
        let n_inner = n / cfg.accumulator_depth;
        let has_edge = n % cfg.accumulator_depth != 0;
        prop_assert_eq!(plan.inner_tile_count(), m_tiles * k_tiles * n_inner);
        prop_assert_eq!(plan.outer_tile_count(), if has_edge { m_tiles * k_tiles } else { 0 });
        prop_assert_eq!(plan.iter().count() as u64, plan.tile_count());
        let iter_cycles: Cycles = plan.iter().map(|t| t.latency()).sum();
        prop_assert_eq!(iter_cycles, plan.total_cycles());
    }

    /// Algorithm 1 is monotone: growing any GEMM dimension never reduces the
    /// estimated latency.
    #[test]
    fn analytical_estimate_is_monotone(
        m in 1u64..1024,
        k in 1u64..1024,
        n in 1u64..4096,
        grow_m in 0u64..512,
        grow_k in 0u64..512,
        grow_n in 0u64..2048,
    ) {
        let cfg = NpuConfig::paper_default();
        let base = estimate_layer_cycles(GemmDims { m, k, n }, &cfg);
        let grown = estimate_layer_cycles(
            GemmDims { m: m + grow_m, k: k + grow_k, n: n + grow_n },
            &cfg,
        );
        prop_assert!(grown >= base);
    }

    /// The sequence-length regression always predicts within the observed
    /// min/max band of the nearest profiled bucket.
    #[test]
    fn seqlen_prediction_stays_in_observed_range(
        samples in proptest::collection::vec((1u64..100, 1u64..200), 1..100),
        query in 1u64..100,
    ) {
        let table = SeqLenTable::from_samples(samples);
        let predicted = table.predict(query);
        let (lo, hi) = table.observed_range(query).expect("table is non-empty");
        prop_assert!(predicted >= lo && predicted <= hi);
    }

    /// Multi-program metrics stay within their mathematical bounds.
    #[test]
    fn metrics_are_bounded(
        outcomes in proptest::collection::vec(
            (1.0f64..1e6, 1.0f64..4.0, prop::sample::select(vec![1.0f64, 3.0, 9.0])),
            1..16,
        )
    ) {
        let outcomes: Vec<TaskOutcome> = outcomes
            .into_iter()
            .map(|(isolated, slowdown, priority)| TaskOutcome {
                isolated_time: isolated,
                turnaround_time: isolated * slowdown,
                priority_weight: priority,
            })
            .collect();
        let n = outcomes.len() as f64;
        let metrics = MultiTaskMetrics::from_outcomes(&outcomes);
        prop_assert!(metrics.antt >= 1.0 - 1e-9);
        prop_assert!(metrics.stp > 0.0 && metrics.stp <= n + 1e-9);
        prop_assert!(metrics.fairness > 0.0 && metrics.fairness <= 1.0 + 1e-9);
    }

    /// Algorithm 3 never returns KILL, and drains exactly when waiting hurts
    /// the candidate less than preemption hurts the current task.
    #[test]
    fn dynamic_mechanism_selection_is_consistent(
        current_estimated in 1u64..10_000_000,
        current_progress in 0.0f64..1.0,
        candidate_estimated in 1u64..10_000_000,
    ) {
        let current_executed = (current_estimated as f64 * current_progress) as u64;
        let inputs = MechanismDecisionInputs {
            current_estimated: Cycles::new(current_estimated),
            current_executed: Cycles::new(current_executed),
            candidate_estimated: Cycles::new(candidate_estimated),
            candidate_executed: Cycles::ZERO,
        };
        let decision = select_mechanism(inputs);
        prop_assert_ne!(decision, PreemptionMechanism::Kill);
        let degradation_current = candidate_estimated as f64 / current_estimated.max(1) as f64;
        let degradation_candidate =
            (current_estimated - current_executed) as f64 / candidate_estimated.max(1) as f64;
        if degradation_current > degradation_candidate {
            prop_assert_eq!(decision, PreemptionMechanism::Drain);
        } else {
            prop_assert_eq!(decision, PreemptionMechanism::Checkpoint);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A progress cursor advanced in arbitrary random steps always consumes
    /// exactly the plan's total cycles, keeps its live checkpoint footprint
    /// within the on-chip budget, and reports monotone progress.
    #[test]
    fn cursor_conserves_cycles_under_arbitrary_stepping(
        model_idx in 0usize..ALL_EVAL_MODELS.len(),
        steps in proptest::collection::vec(1u64..2_000_000, 1..64),
    ) {
        let cfg = NpuConfig::paper_default();
        let model = ALL_EVAL_MODELS[model_idx];
        let seq = SeqSpec::for_model(model, 12);
        let plan = ExecutionPlan::compile(model, 1, seq, &cfg);
        let mut cursor = ProgressCursor::start();
        let mut consumed_total = Cycles::ZERO;
        let mut prev_executed = Cycles::ZERO;
        for step in steps {
            let consumed = cursor.advance(&plan, Cycles::new(step));
            consumed_total += consumed;
            prop_assert!(cursor.executed() >= prev_executed);
            prev_executed = cursor.executed();
            prop_assert!(cursor.live_checkpoint_bytes(&plan) <= cfg.max_checkpoint_bytes());
            prop_assert!(cursor.executed() + cursor.remaining(&plan) == plan.total_cycles());
        }
        // Finish the plan.
        cursor.advance(&plan, plan.total_cycles());
        prop_assert!(cursor.is_complete(&plan));
        prop_assert_eq!(cursor.executed(), plan.total_cycles());
    }

    /// A single fully-connected layer run through the whole stack (layer ->
    /// lowering -> timing) has a latency at least as large as its ideal
    /// compute-bound lower bound.
    #[test]
    fn layer_latency_respects_compute_lower_bound(
        in_features in 1u64..8192,
        out_features in 1u64..8192,
        batch in 1u64..32,
    ) {
        let cfg = NpuConfig::paper_default();
        let layer = Layer::new(
            "fc",
            LayerKind::FullyConnected { in_features, out_features },
        );
        let work = prema::models::lowering::lower_layer(&layer, batch);
        let timing = prema::npu::LayerTiming::model(&work, &cfg);
        let ideal_cycles = layer.macs(batch).div_ceil(cfg.peak_macs_per_cycle());
        prop_assert!(timing.total_cycles().get() >= ideal_cycles);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// End-to-end engine invariants hold for random small workloads under
    /// random policies and preemption modes: every task completes, turnaround
    /// is never below the isolated time, and the makespan bounds every
    /// completion.
    #[test]
    fn engine_invariants_hold_for_random_workloads(
        seedlings in proptest::collection::vec(
            (0usize..ALL_EVAL_MODELS.len(), 0u64..20_000_000u64, 0usize..3),
            2..5,
        ),
        policy_idx in 0usize..PolicyKind::ALL.len(),
        preemptive in proptest::bool::ANY,
    ) {
        let cfg = NpuConfig::paper_default();
        let policy = PolicyKind::ALL[policy_idx];
        let mode = if preemptive { PreemptionMode::Dynamic } else { PreemptionMode::NonPreemptive };
        let requests: Vec<TaskRequest> = seedlings
            .iter()
            .enumerate()
            .map(|(i, &(model_idx, arrival, priority_idx))| {
                let model = ALL_EVAL_MODELS[model_idx];
                TaskRequest::new(TaskId(i as u64), model)
                    .with_priority(Priority::ALL[priority_idx])
                    .with_arrival(Cycles::new(arrival))
                    .with_seq(SeqSpec::for_model(model, 10))
            })
            .collect();
        let sim = NpuSimulator::new(cfg, SchedulerConfig::named(policy, mode));
        let prepared = sim.prepare(&requests);
        let outcome = sim.run(&prepared);
        prop_assert_eq!(outcome.records.len(), requests.len());
        for record in &outcome.records {
            prop_assert!(record.completion <= outcome.makespan);
            prop_assert!(record.completion > record.arrival);
            prop_assert!(record.turnaround() >= record.isolated_cycles);
        }
    }
}
